"""Ensemble-parallel execution of forecasts and analyses.

The paper parallelises the EnSF over the ensemble dimension because it
"incurs minimal communication overhead" (§III-A3) and the LETKF over its
independent local column analyses.  This module provides both decompositions
on a workstation: work-units (member slices for forecasts/EnSF, column
blocks for the LETKF solve stage via :meth:`EnsembleExecutor.map_blocks`)
are processed by a persistent pool of worker processes (or serially when
``n_workers == 1``) and the results are gathered in order — the local
equivalent of the per-rank work plus final MPI gather of the paper's
implementation.

Reproducibility contract: every parallel path must be **worker-count
invariant** — the gathered result is bit-identical for any ``n_workers``
(including the serial in-process fallback).  For the EnSF this is achieved
by spawning one seed per *member* from a single root
:class:`numpy.random.SeedSequence` and drawing member-wise streams
(:class:`~repro.utils.random.MemberStreams`); for the LETKF by decomposing
the columns into fixed-size shards that do not depend on the worker count.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.utils.faults import FaultInjected, FaultLog, FaultPlan

__all__ = ["ensemble_slices", "EnsembleExecutor", "ExecutorLease", "ShardRetryError"]

# Failures worth recomputing the shard for: a dead worker pool, a shard that
# blew its deadline, or an injected fault.  Anything else (a ValueError from
# the job function, say) is a real bug and propagates immediately.
_RETRYABLE = (BrokenProcessPool, TimeoutError, FaultInjected)


class ShardRetryError(RuntimeError):
    """A shard kept failing after exhausting the executor's retry budget."""


def _guarded_call(fn, job, fault, parent_pid: int):
    """Worker entry point: optionally trigger an injected fault, then run ``fn``.

    ``fault`` is consumed *before* the computation, so a retried shard (the
    plan only fires each event once) recomputes exactly ``fn(job)`` — which
    is what makes recovery bit-identical for deterministic shards.
    """
    if fault is not None:
        if fault.kind == "worker-crash":
            if os.getpid() != parent_pid:
                os._exit(3)  # hard kill: the pool sees a vanished worker
            raise FaultInjected("injected worker crash (serial in-process shard)")
        elif fault.kind == "task-hang":
            time.sleep(float(fault.payload.get("hang_s", 0.25)))
    return fn(job)


def ensemble_slices(n_members: int, n_workers: int) -> list[slice]:
    """Split ``n_members`` into ``n_workers`` contiguous, near-equal slices.

    The first ``n_members % n_workers`` slices get one extra member, so the
    imbalance is at most one — the same block decomposition an MPI rank
    layout would use.
    """
    if n_members < 1 or n_workers < 1:
        raise ValueError("n_members and n_workers must be positive")
    n_workers = min(n_workers, n_members)
    base = n_members // n_workers
    remainder = n_members % n_workers
    slices = []
    start = 0
    for w in range(n_workers):
        count = base + (1 if w < remainder else 0)
        slices.append(slice(start, start + count))
        start += count
    return slices


def _forecast_chunk(args):
    """Worker entry point: propagate a chunk of members through the model."""
    model, chunk, n_steps = args
    return model.forecast(chunk, n_steps=n_steps)


def _ensf_chunk(args):
    """Worker entry point: draw a rank's analysis members with EnSF."""
    filter_, forecast_ensemble, observation, operator, member_seeds = args
    return filter_.analyze_members(
        forecast_ensemble, observation, operator, member_seeds=member_seeds
    )


class EnsembleExecutor:
    """Map ensemble-member work over worker processes.

    The worker pool is created lazily and **reused across calls** (and hence
    across OSSE cycles): process start-up plus re-importing numpy costs far
    more than a cycle's worth of forecast work for small ensembles, so a
    fresh pool per cycle would swamp the parallel speedup.  Models that carry
    forecast workspaces (e.g. the fused SQG engine) drop them when pickled to
    workers and rebuild them there on first use, so shipping a model per
    chunk stays cheap.

    Parameters
    ----------
    n_workers:
        Number of worker processes; defaults to the CPU count (capped at 8 to
        stay friendly on shared machines).  ``1`` disables multiprocessing
        and runs serially in-process, which is also the fallback whenever the
        work is too small to amortise process start-up.
    min_members_per_worker:
        Below this many members per worker the executor runs serially.
    reuse_pool:
        Keep the worker pool alive between calls (default).  ``False``
        restores the tear-down-per-call behaviour.  Use :meth:`close` (or the
        context-manager form) to release workers deterministically.
    max_retries:
        How many times a failed shard batch is recomputed before
        :class:`ShardRetryError`.  Only *infrastructure* failures are
        retried (dead pool, blown deadline, injected fault) — exceptions
        raised by the job function itself always propagate.
    retry_backoff_s:
        Base of the exponential backoff between retry attempts:
        ``retry_backoff_s * 2**(attempt-1) * uniform(0.5, 1.5)`` seconds.
        The jitter factor decorrelates the retry storms of co-scheduled
        jobs sharing one machine (without it, jobs that crashed together —
        e.g. on a pool death — retry in lockstep and collide again).  It is
        drawn from a **dedicated** backoff rng private to this executor:
        no experiment rng stream (member streams, observation noise,
        seed-sequence factories) is ever touched, so results remain
        bit-identical regardless of how many retries were jittered.
    backoff_seed:
        Optional seed for the dedicated backoff rng (default: fresh OS
        entropy).  Only timing is affected — results never depend on it.
    task_deadline_s:
        Wall-clock budget for one gather attempt on the pool.  Shards still
        running when it expires are treated as hung: the pool is terminated,
        rebuilt, and the shards recomputed (serial in-process shards cannot
        be interrupted, so the deadline only applies to pool runs).
    fault_plan / fault_log:
        Deterministic fault injection (see :mod:`repro.utils.faults`).  The
        plan defaults to ``FaultPlan.from_env()`` (the ``REPRO_FAULT_PLAN``
        variable, usually unset); every recovery the executor performs is
        appended to the log.
    """

    def __init__(
        self,
        n_workers: int | None = None,
        min_members_per_worker: int = 4,
        reuse_pool: bool = True,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        task_deadline_s: float | None = None,
        fault_plan: FaultPlan | None = None,
        fault_log: FaultLog | None = None,
        backoff_seed: int | None = None,
    ):
        if n_workers is None:
            n_workers = min(8, os.cpu_count() or 1)
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.n_workers = int(n_workers)
        self.min_members_per_worker = int(min_members_per_worker)
        self.reuse_pool = bool(reuse_pool)
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.task_deadline_s = None if task_deadline_s is None else float(task_deadline_s)
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self.fault_log = fault_log if fault_log is not None else FaultLog()
        # Dedicated, non-experiment rng for backoff jitter (see class doc).
        self._backoff_rng = np.random.default_rng(backoff_seed)
        self._backoff_lock = threading.Lock()
        # Pool management must be serialized: with an experiment service the
        # same pool is shared by many concurrent jobs, and an unlocked
        # rebuild racing a concurrent acquire would leak (or double-kill)
        # worker processes.  Submission/gather stay lock-free — only
        # acquire/discard/close take the lock.
        self._pool_lock = threading.RLock()
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers = 0

    # ------------------------------------------------------------------ #
    def _effective_workers(self, n_members: int) -> int:
        by_size = max(1, n_members // self.min_members_per_worker)
        return max(1, min(self.n_workers, by_size))

    def _faults_for(self, pending: list[int], fault_plan: FaultPlan | None) -> dict:
        """Injected faults for this gather attempt, keyed by job index.

        One ``"executor"`` site visit per attempt — the counter advances
        identically for serial and pool gathers, so a fault plan hits the
        same logical shard batch under any worker layout.
        """
        if fault_plan is None:
            return {}
        faults = {}
        for event in fault_plan.visit("executor"):
            if event.kind in ("worker-crash", "task-hang"):
                target = pending[int(event.payload.get("job", 0)) % len(pending)]
                faults[target] = event
        return faults

    def _acquire_pool(self, workers: int) -> ProcessPoolExecutor:
        if not self.reuse_pool:
            return ProcessPoolExecutor(max_workers=workers)
        with self._pool_lock:
            if self._pool is None or self._pool_workers < workers:
                self.close()
                self._pool = ProcessPoolExecutor(max_workers=workers)
                self._pool_workers = workers
            return self._pool

    def _discard_pool(self, pool: ProcessPoolExecutor, hung: bool) -> None:
        """Drop a broken or hung pool without ever blocking on its workers."""
        with self._pool_lock:
            if pool is self._pool:
                self._pool = None
                self._pool_workers = 0
        if hung:
            # shutdown(wait=False) would leave hung workers running (and
            # clears the pool's process table); kill them first so they
            # cannot hold the machine (or pytest) hostage.
            for proc in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    proc.terminate()
                except Exception:
                    pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass  # pool management threads may already be dead

    def _attempt_serial(self, fn, jobs, results, pending, faults):
        failed, error = [], None
        for idx in pending:
            try:
                results[idx] = _guarded_call(fn, jobs[idx], faults.get(idx), os.getpid())
            except _RETRYABLE as exc:
                failed.append(idx)
                error = exc
        return failed, error

    def _attempt_pool(self, fn, jobs, results, pending, faults, workers, fault_log):
        pool = self._acquire_pool(workers)
        parent_pid = os.getpid()
        failed, error = [], None
        broken = hung = False
        futures = {}
        try:
            for idx in pending:
                futures[pool.submit(_guarded_call, fn, jobs[idx], faults.get(idx), parent_pid)] = idx
        except (BrokenProcessPool, RuntimeError) as exc:
            broken, error = True, exc
        done, not_done = wait(set(futures), timeout=self.task_deadline_s)
        for fut in done:
            idx = futures[fut]
            exc = fut.exception()
            if exc is None:
                results[idx] = fut.result()
            elif isinstance(exc, _RETRYABLE):
                failed.append(idx)
                error = exc
                broken = broken or isinstance(exc, BrokenProcessPool)
            else:
                # A genuine job-function error: not the executor's to heal.
                if not self.reuse_pool:
                    pool.shutdown(wait=False, cancel_futures=True)
                raise exc
        if not_done:
            hung = True
            failed.extend(futures[fut] for fut in not_done)
            error = TimeoutError(
                f"{len(not_done)} shard(s) exceeded the {self.task_deadline_s}s task deadline"
            )
            fault_log.record("executor", "deadline-kill", str(error))
        submitted = set(futures.values())
        failed.extend(idx for idx in pending if idx not in submitted)
        if broken or hung:
            self._discard_pool(pool, hung=hung)
            fault_log.record(
                "executor",
                "pool-rebuild",
                "terminated hung worker pool" if hung else "replaced broken worker pool",
            )
        elif not self.reuse_pool:
            pool.shutdown()
        return failed, error

    def _retry_delay(self, attempt: int) -> float:
        """Jittered exponential backoff before retry ``attempt`` (1-based).

        ``retry_backoff_s * 2**(attempt-1) * uniform(0.5, 1.5)``, drawn from
        the executor's dedicated backoff rng — never from an experiment
        stream (the draw happens only on the retry path, and even there it
        influences timing alone).
        """
        with self._backoff_lock:
            jitter = float(self._backoff_rng.uniform(0.5, 1.5))
        return self.retry_backoff_s * (2 ** (attempt - 1)) * jitter

    def _gather(
        self,
        fn,
        jobs,
        workers: int,
        fault_log: FaultLog | None = None,
        fault_plan: FaultPlan | None | str = "inherit",
    ) -> list:
        """Run ``jobs`` (serially or on the pool), retrying failed shards.

        Results are returned in job order.  Failed shards are recomputed with
        jittered exponential backoff up to ``max_retries`` extra attempts;
        because the shards are deterministic and injected faults fire at most
        once, the recovered gather is bit-identical to a fault-free one.
        ``fault_log``/``fault_plan`` default to the executor's own; an
        :class:`ExecutorLease` passes per-job overrides so concurrent jobs
        sharing the pool keep separately attributable recovery ledgers.
        """
        fault_log = self.fault_log if fault_log is None else fault_log
        if isinstance(fault_plan, str):
            fault_plan = self.fault_plan
        results: list = [None] * len(jobs)
        pending = list(range(len(jobs)))
        attempt = 0
        while True:
            faults = self._faults_for(pending, fault_plan)
            if workers == 1:
                failed, error = self._attempt_serial(fn, jobs, results, pending, faults)
            else:
                failed, error = self._attempt_pool(
                    fn, jobs, results, pending, faults, workers, fault_log
                )
            if not failed:
                return results
            attempt += 1
            if attempt > self.max_retries:
                raise ShardRetryError(
                    f"{len(failed)} shard(s) still failing after "
                    f"{self.max_retries} retries: {error!r}"
                ) from error
            fault_log.record(
                "executor",
                "retry",
                f"recomputing {len(failed)} shard(s), attempt {attempt + 1} "
                f"after {type(error).__name__}",
            )
            delay = self._retry_delay(attempt)
            if delay > 0:
                time.sleep(delay)
            failed.sort()
            pending = failed

    def close(self) -> None:
        """Shut down the persistent worker pool (no-op when none is open).

        Teardown is deliberately forgiving: ``close()`` may run from
        ``__del__`` during interpreter shutdown (attributes may never have
        been assigned if ``__init__`` raised) or against a pool whose workers
        are already dead, where ``shutdown()`` can raise :class:`OSError`
        on the broken pipes.  Swallowing those here keeps teardown from
        masking the real failure a test is about to report.
        """
        pool = getattr(self, "_pool", None)
        self._pool = None
        self._pool_workers = 0
        if pool is not None:
            try:
                pool.shutdown()
            except (OSError, RuntimeError):
                pass  # workers already gone / interpreter shutting down

    def __enter__(self) -> "EnsembleExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass  # interpreter tear-down: the pool reaps itself

    def lease(
        self,
        job: str = "",
        fault_log: FaultLog | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> "ExecutorLease":
        """Per-job view of this executor for concurrent scheduling.

        The lease shares the worker pool but routes recoveries to its own
        :class:`FaultLog` (fresh by default) and draws injected faults from
        its own :class:`FaultPlan` (empty by default, so a process-wide
        ``REPRO_FAULT_PLAN`` targeting the service does not double-fire
        inside every job).  See :class:`ExecutorLease`.
        """
        return ExecutorLease(self, job=job, fault_log=fault_log, fault_plan=fault_plan)

    def map_blocks(self, fn, jobs: list, *, fault_log=None, fault_plan="inherit") -> list:
        """Map independent, picklable work-units over the pool, in order.

        This is the generic sharding primitive behind the parallel analysis
        paths: ``fn`` must be a module-level function and each element of
        ``jobs`` a picklable work-unit (e.g. one contiguous LETKF column
        block with its geometry slice).  Results are returned in job order.
        The caller owns the decomposition; to guarantee worker-count
        invariance the job list must not depend on ``n_workers`` (the pool
        only changes *where* a job runs, never what it computes).  With one
        job or one worker the jobs run serially in-process.
        """
        if not jobs:
            return []
        workers = min(self.n_workers, len(jobs))
        return self._gather(fn, jobs, workers, fault_log=fault_log, fault_plan=fault_plan)

    def map_states(
        self, model, ensemble: np.ndarray, n_steps: int = 1, *, fault_log=None, fault_plan="inherit"
    ) -> np.ndarray:
        """Propagate an ``(m, d)`` ensemble through ``model`` member-parallel."""
        ensemble = np.asarray(ensemble, dtype=float)
        if ensemble.ndim != 2:
            raise ValueError("ensemble must have shape (m, state_size)")
        workers = self._effective_workers(ensemble.shape[0])
        slices = ensemble_slices(ensemble.shape[0], workers)
        jobs = [(model, ensemble[s], n_steps) for s in slices]
        results = self._gather(
            _forecast_chunk, jobs, workers, fault_log=fault_log, fault_plan=fault_plan
        )
        return np.concatenate(results, axis=0)

    def analyze_ensf(
        self,
        filter_,
        forecast_ensemble: np.ndarray,
        observation: np.ndarray,
        operator,
        seed: int | np.random.SeedSequence = 0,
        *,
        fault_log=None,
        fault_plan="inherit",
    ) -> np.ndarray:
        """Member-parallel EnSF analysis (each worker integrates its members).

        Every worker receives the full forecast ensemble (the broadcast of
        the paper's implementation) and integrates the reverse SDE only for
        its slice of analysis members; the slices are concatenated and the
        caller applies global post-processing (spread relaxation).

        Seeding is member-wise: one child :class:`numpy.random.SeedSequence`
        per ensemble member is spawned from the root ``seed``, and each
        worker's :meth:`EnSF.analyze_members` call draws every member from
        its own stream.  The gathered analysis is therefore bit-identical
        for any ``n_workers`` / ``min_members_per_worker`` layout, including
        the serial fallback.  (Pre-fix behaviour drew one seed per *slice*,
        so the analysis changed with the worker count.)
        """
        forecast_ensemble = np.asarray(forecast_ensemble, dtype=float)
        n_members = forecast_ensemble.shape[0]
        if isinstance(seed, np.random.SeedSequence):
            # Spawn from a private copy: SeedSequence.spawn() advances the
            # parent's child counter, so spawning from the caller's object
            # would make a second call with the same root non-reproducible.
            root = np.random.SeedSequence(entropy=seed.entropy, spawn_key=seed.spawn_key)
        else:
            root = np.random.SeedSequence(int(seed))
        member_seeds = root.spawn(n_members)
        workers = self._effective_workers(n_members)
        slices = ensemble_slices(n_members, workers)
        jobs = [
            (filter_, forecast_ensemble, observation, operator, member_seeds[s.start : s.stop])
            for s in slices
        ]
        results = self._gather(
            _ensf_chunk, jobs, workers, fault_log=fault_log, fault_plan=fault_plan
        )
        return np.concatenate(results, axis=0)


class ExecutorLease:
    """A per-job handle onto a shared :class:`EnsembleExecutor`.

    An experiment service runs many jobs concurrently over one pool; each
    job holds a lease rather than the executor itself.  The lease exposes
    the same mapping API (``map_blocks`` / ``map_states`` / ``analyze_ensf``)
    and shares the parent's workers, retry budget and deadlines, but:

    - recoveries are recorded in the **lease's own** :class:`FaultLog`, so
      per-job health is attributable (the service reads it to decide
      retry/fail transitions) instead of interleaved in one global ledger;
    - injected faults come from the **lease's own** :class:`FaultPlan`
      (empty by default), so a process-wide ``REPRO_FAULT_PLAN`` aimed at
      the scheduler site is not consumed N times by N concurrent jobs —
      chaos tests target a specific job by handing that job's lease a plan.

    ``close()`` is a no-op: the pool belongs to the parent executor and
    outlives any one job.  Unknown attributes delegate to the parent, so a
    lease substitutes anywhere an ``EnsembleExecutor`` is accepted.
    """

    def __init__(
        self,
        parent: EnsembleExecutor,
        job: str = "",
        fault_log: FaultLog | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        self._parent = parent
        self.job = str(job)
        self.fault_log = fault_log if fault_log is not None else FaultLog()
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()

    @property
    def parent(self) -> EnsembleExecutor:
        return self._parent

    def map_blocks(self, fn, jobs: list) -> list:
        return self._parent.map_blocks(
            fn, jobs, fault_log=self.fault_log, fault_plan=self.fault_plan
        )

    def map_states(self, model, ensemble: np.ndarray, n_steps: int = 1) -> np.ndarray:
        return self._parent.map_states(
            model, ensemble, n_steps, fault_log=self.fault_log, fault_plan=self.fault_plan
        )

    def analyze_ensf(self, filter_, forecast_ensemble, observation, operator, seed=0):
        return self._parent.analyze_ensf(
            filter_,
            forecast_ensemble,
            observation,
            operator,
            seed,
            fault_log=self.fault_log,
            fault_plan=self.fault_plan,
        )

    def close(self) -> None:
        """No-op: the shared pool is owned (and closed) by the parent."""

    def __enter__(self) -> "ExecutorLease":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getattr__(self, name):
        return getattr(self._parent, name)
