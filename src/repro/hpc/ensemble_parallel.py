"""Ensemble-parallel execution of forecasts and analyses.

The paper parallelises the EnSF over the ensemble dimension because it
"incurs minimal communication overhead" (§III-A3) and the LETKF over its
independent local column analyses.  This module provides both decompositions
on a workstation: work-units (member slices for forecasts/EnSF, column
blocks for the LETKF solve stage via :meth:`EnsembleExecutor.map_blocks`)
are processed by a persistent pool of worker processes (or serially when
``n_workers == 1``) and the results are gathered in order — the local
equivalent of the per-rank work plus final MPI gather of the paper's
implementation.

Reproducibility contract: every parallel path must be **worker-count
invariant** — the gathered result is bit-identical for any ``n_workers``
(including the serial in-process fallback).  For the EnSF this is achieved
by spawning one seed per *member* from a single root
:class:`numpy.random.SeedSequence` and drawing member-wise streams
(:class:`~repro.utils.random.MemberStreams`); for the LETKF by decomposing
the columns into fixed-size shards that do not depend on the worker count.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

__all__ = ["ensemble_slices", "EnsembleExecutor"]


def ensemble_slices(n_members: int, n_workers: int) -> list[slice]:
    """Split ``n_members`` into ``n_workers`` contiguous, near-equal slices.

    The first ``n_members % n_workers`` slices get one extra member, so the
    imbalance is at most one — the same block decomposition an MPI rank
    layout would use.
    """
    if n_members < 1 or n_workers < 1:
        raise ValueError("n_members and n_workers must be positive")
    n_workers = min(n_workers, n_members)
    base = n_members // n_workers
    remainder = n_members % n_workers
    slices = []
    start = 0
    for w in range(n_workers):
        count = base + (1 if w < remainder else 0)
        slices.append(slice(start, start + count))
        start += count
    return slices


def _forecast_chunk(args):
    """Worker entry point: propagate a chunk of members through the model."""
    model, chunk, n_steps = args
    return model.forecast(chunk, n_steps=n_steps)


def _ensf_chunk(args):
    """Worker entry point: draw a rank's analysis members with EnSF."""
    filter_, forecast_ensemble, observation, operator, member_seeds = args
    return filter_.analyze_members(
        forecast_ensemble, observation, operator, member_seeds=member_seeds
    )


class EnsembleExecutor:
    """Map ensemble-member work over worker processes.

    The worker pool is created lazily and **reused across calls** (and hence
    across OSSE cycles): process start-up plus re-importing numpy costs far
    more than a cycle's worth of forecast work for small ensembles, so a
    fresh pool per cycle would swamp the parallel speedup.  Models that carry
    forecast workspaces (e.g. the fused SQG engine) drop them when pickled to
    workers and rebuild them there on first use, so shipping a model per
    chunk stays cheap.

    Parameters
    ----------
    n_workers:
        Number of worker processes; defaults to the CPU count (capped at 8 to
        stay friendly on shared machines).  ``1`` disables multiprocessing
        and runs serially in-process, which is also the fallback whenever the
        work is too small to amortise process start-up.
    min_members_per_worker:
        Below this many members per worker the executor runs serially.
    reuse_pool:
        Keep the worker pool alive between calls (default).  ``False``
        restores the tear-down-per-call behaviour.  Use :meth:`close` (or the
        context-manager form) to release workers deterministically.
    """

    def __init__(
        self,
        n_workers: int | None = None,
        min_members_per_worker: int = 4,
        reuse_pool: bool = True,
    ):
        if n_workers is None:
            n_workers = min(8, os.cpu_count() or 1)
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        self.n_workers = int(n_workers)
        self.min_members_per_worker = int(min_members_per_worker)
        self.reuse_pool = bool(reuse_pool)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers = 0

    # ------------------------------------------------------------------ #
    def _effective_workers(self, n_members: int) -> int:
        by_size = max(1, n_members // self.min_members_per_worker)
        return max(1, min(self.n_workers, by_size))

    def _run_jobs(self, fn, jobs, workers: int) -> list:
        """Run ``jobs`` on a pool of at least ``workers`` processes."""
        if not self.reuse_pool:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, jobs))
        if self._pool is None or self._pool_workers < workers:
            self.close()
            self._pool = ProcessPoolExecutor(max_workers=workers)
            self._pool_workers = workers
        try:
            return list(self._pool.map(fn, jobs))
        except BrokenProcessPool:
            # A dead pool would poison every later call; drop it so the next
            # call builds a fresh one (the per-call behaviour this class
            # replaced recovered the same way).
            self.close()
            raise

    def close(self) -> None:
        """Shut down the persistent worker pool (no-op when none is open).

        Teardown is deliberately forgiving: ``close()`` may run from
        ``__del__`` during interpreter shutdown (attributes may never have
        been assigned if ``__init__`` raised) or against a pool whose workers
        are already dead, where ``shutdown()`` can raise :class:`OSError`
        on the broken pipes.  Swallowing those here keeps teardown from
        masking the real failure a test is about to report.
        """
        pool = getattr(self, "_pool", None)
        self._pool = None
        self._pool_workers = 0
        if pool is not None:
            try:
                pool.shutdown()
            except (OSError, RuntimeError):
                pass  # workers already gone / interpreter shutting down

    def __enter__(self) -> "EnsembleExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass  # interpreter tear-down: the pool reaps itself

    def map_blocks(self, fn, jobs: list) -> list:
        """Map independent, picklable work-units over the pool, in order.

        This is the generic sharding primitive behind the parallel analysis
        paths: ``fn`` must be a module-level function and each element of
        ``jobs`` a picklable work-unit (e.g. one contiguous LETKF column
        block with its geometry slice).  Results are returned in job order.
        The caller owns the decomposition; to guarantee worker-count
        invariance the job list must not depend on ``n_workers`` (the pool
        only changes *where* a job runs, never what it computes).  With one
        job or one worker the jobs run serially in-process.
        """
        if not jobs:
            return []
        workers = min(self.n_workers, len(jobs))
        if workers == 1:
            return [fn(job) for job in jobs]
        return self._run_jobs(fn, jobs, workers)

    def map_states(self, model, ensemble: np.ndarray, n_steps: int = 1) -> np.ndarray:
        """Propagate an ``(m, d)`` ensemble through ``model`` member-parallel."""
        ensemble = np.asarray(ensemble, dtype=float)
        if ensemble.ndim != 2:
            raise ValueError("ensemble must have shape (m, state_size)")
        workers = self._effective_workers(ensemble.shape[0])
        if workers == 1:
            return model.forecast(ensemble, n_steps=n_steps)
        slices = ensemble_slices(ensemble.shape[0], workers)
        jobs = [(model, ensemble[s], n_steps) for s in slices]
        results = self._run_jobs(_forecast_chunk, jobs, workers)
        return np.concatenate(results, axis=0)

    def analyze_ensf(
        self,
        filter_,
        forecast_ensemble: np.ndarray,
        observation: np.ndarray,
        operator,
        seed: int | np.random.SeedSequence = 0,
    ) -> np.ndarray:
        """Member-parallel EnSF analysis (each worker integrates its members).

        Every worker receives the full forecast ensemble (the broadcast of
        the paper's implementation) and integrates the reverse SDE only for
        its slice of analysis members; the slices are concatenated and the
        caller applies global post-processing (spread relaxation).

        Seeding is member-wise: one child :class:`numpy.random.SeedSequence`
        per ensemble member is spawned from the root ``seed``, and each
        worker's :meth:`EnSF.analyze_members` call draws every member from
        its own stream.  The gathered analysis is therefore bit-identical
        for any ``n_workers`` / ``min_members_per_worker`` layout, including
        the serial fallback.  (Pre-fix behaviour drew one seed per *slice*,
        so the analysis changed with the worker count.)
        """
        forecast_ensemble = np.asarray(forecast_ensemble, dtype=float)
        n_members = forecast_ensemble.shape[0]
        if isinstance(seed, np.random.SeedSequence):
            # Spawn from a private copy: SeedSequence.spawn() advances the
            # parent's child counter, so spawning from the caller's object
            # would make a second call with the same root non-reproducible.
            root = np.random.SeedSequence(entropy=seed.entropy, spawn_key=seed.spawn_key)
        else:
            root = np.random.SeedSequence(int(seed))
        member_seeds = root.spawn(n_members)
        workers = self._effective_workers(n_members)
        slices = ensemble_slices(n_members, workers)
        jobs = [
            (filter_, forecast_ensemble, observation, operator, member_seeds[s.start : s.stop])
            for s in slices
        ]
        if workers == 1:
            results = [_ensf_chunk(job) for job in jobs]
        else:
            results = self._run_jobs(_ensf_chunk, jobs, workers)
        return np.concatenate(results, axis=0)
