"""Shared-memory transport for large read-only shard payloads.

Every gather the :class:`~repro.hpc.ensemble_parallel.EnsembleExecutor`
performs ships its work-units to pool workers by pickling them through a
pipe.  For the analysis shards that is dominated by a handful of large,
read-only numpy arrays — the broadcast EnSF forecast ensemble, the LETKF
convolution channels, per-shard perturbation/mean blocks — which each
worker receives as an O(payload) pickle even though the bytes already sit
in the parent's memory.  This module moves those arrays through
:mod:`multiprocessing.shared_memory` segments instead, so the pipe carries
an O(name) :class:`SharedArrayHandle` and the worker copies the bytes
straight out of the kernel's shared pages:

* :class:`SharedPayloadArena` — the parent-side owner.  ``share()`` copies
  an array into a fresh segment and returns a picklable handle;
  per-segment **refcounts** (one per work-unit that references the
  segment, so a broadcast array deduplicates to a single segment) let the
  executor release memory progressively as shards complete, with
  ``release_all()`` as the end-of-gather (and executor-close) backstop.
* :class:`SharedArrayHandle` — the O(name) token.  ``materialize()``
  attaches, copies the array out, and detaches immediately, so the worker
  ends up with exactly the private, writable array a pickled payload would
  have produced — the transport is invisible to worker functions, which is
  what keeps the shm and pickle paths bit-identical by construction.
* :func:`resolve_payloads` / :func:`count_handles` — recursive swap-in of
  handles inside tuple/list/dict work-units (the executor swaps arrays out
  with the mirror walk in ``_prepare_payloads``).

Attachment never outlives ``materialize()``: on Python < 3.13 merely
attaching registers the segment with the *worker's* resource tracker,
which would unlink the parent's live segment when the worker exits, so the
attach helper immediately unregisters it again.  Platforms without
functional POSIX shared memory degrade transparently: ``HAVE_SHM`` is
false and the executor simply keeps pickling.
"""

from __future__ import annotations

import threading

import numpy as np

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import resource_tracker
    from multiprocessing import shared_memory as _shm

    HAVE_SHM = True
except ImportError:  # pragma: no cover - no POSIX shm on this platform
    resource_tracker = None
    _shm = None
    HAVE_SHM = False

__all__ = [
    "HAVE_SHM",
    "SharedArrayHandle",
    "SharedPayloadArena",
    "resolve_payloads",
    "count_handles",
]


_ATTACH_LOCK = threading.Lock()


def _attach(name: str):
    """Attach to an existing segment without adopting its lifetime.

    ``SharedMemory(name=...)`` on Python < 3.13 registers the attachment
    with the resource tracker as if this process were an owner.  Under a
    spawn start method the worker's own tracker would then unlink the
    parent's live segment when the worker exits; under fork the workers
    *share* the parent's tracker, so an unregister-after-attach would
    instead erase the creating arena's crash-cleanup entry.  Suppressing
    the registration for the duration of the attach sidesteps both:
    ownership stays exactly where ``SharedPayloadArena`` put it.
    """
    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return _shm.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedArrayHandle:
    """Picklable O(name) stand-in for a shared read-only array payload."""

    __slots__ = ("name", "shape", "dtype", "nbytes")

    def __init__(self, name: str, shape: tuple, dtype: str, nbytes: int):
        self.name = name
        self.shape = tuple(shape)
        self.dtype = dtype
        self.nbytes = int(nbytes)

    def __reduce__(self):
        return (SharedArrayHandle, (self.name, self.shape, self.dtype, self.nbytes))

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<SharedArrayHandle {self.name!r} {self.dtype}{self.shape}>"

    def materialize(self) -> np.ndarray:
        """Copy the shared bytes into a fresh private array and detach.

        The copy deliberately reproduces pickle-transport semantics: the
        worker owns a writable array and holds no reference to the
        segment, so the parent can unlink at any time after the gather
        without invalidating worker state.
        """
        segment = _attach(self.name)
        try:
            view = np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=segment.buf)
            out = np.array(view)
            del view  # release the buffer export before closing the map
        finally:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - view still exported
                pass
        return out


class SharedPayloadArena:
    """Parent-side registry of shared segments with per-segment refcounts.

    One arena lives for the duration of one executor gather: ``share()``
    as the jobs are prepared (``retain()`` once per work-unit referencing
    the segment), ``release()`` as each shard completes, ``release_all()``
    in the gather's ``finally`` — and again from
    ``EnsembleExecutor.close()`` as the crash backstop, so a gather that
    never reaches its ``finally`` cannot leak ``/dev/shm`` segments past
    the executor's lifetime.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._segments: dict[str, list] = {}  # name -> [SharedMemory, refcount]

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)

    @property
    def names(self) -> list[str]:
        with self._lock:
            return list(self._segments)

    def share(self, array: np.ndarray) -> SharedArrayHandle:
        """Copy ``array`` into a new segment and return its handle (refcount 0)."""
        arr = np.ascontiguousarray(array)
        if arr.nbytes == 0:
            raise ValueError("cannot share a zero-byte array")
        segment = _shm.SharedMemory(create=True, size=arr.nbytes)
        np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf)[...] = arr
        with self._lock:
            self._segments[segment.name] = [segment, 0]
        return SharedArrayHandle(segment.name, arr.shape, str(arr.dtype), arr.nbytes)

    def retain(self, name: str) -> None:
        with self._lock:
            self._segments[name][1] += 1

    def release(self, name: str) -> None:
        """Drop one reference; unlink the segment when none remain."""
        with self._lock:
            entry = self._segments.get(name)
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] > 0:
                return
            del self._segments[name]
            segment = entry[0]
        self._destroy(segment)

    def release_all(self) -> None:
        with self._lock:
            segments = [entry[0] for entry in self._segments.values()]
            self._segments.clear()
        for segment in segments:
            self._destroy(segment)

    @staticmethod
    def _destroy(segment) -> None:
        try:
            segment.close()
        except Exception:
            pass
        try:
            segment.unlink()
        except Exception:
            pass  # already unlinked (double release / interpreter teardown)


def resolve_payloads(obj):
    """Swap every :class:`SharedArrayHandle` inside ``obj`` for its array.

    Walks tuples, lists and dict values (the shapes executor work-units
    take); any other object — including the arrays themselves — passes
    through untouched, so a job without handles is returned as-is.
    """
    if isinstance(obj, SharedArrayHandle):
        return obj.materialize()
    if isinstance(obj, tuple):
        return tuple(resolve_payloads(v) for v in obj)
    if isinstance(obj, list):
        return [resolve_payloads(v) for v in obj]
    if isinstance(obj, dict):
        return {k: resolve_payloads(v) for k, v in obj.items()}
    return obj


def count_handles(obj) -> int:
    """Number of :class:`SharedArrayHandle` tokens reachable inside ``obj``."""
    if isinstance(obj, SharedArrayHandle):
        return 1
    if isinstance(obj, (tuple, list)):
        return sum(count_handles(v) for v in obj)
    if isinstance(obj, dict):
        return sum(count_handles(v) for v in obj.values())
    return 0
