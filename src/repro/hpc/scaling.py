"""Strong/weak scaling harnesses (Figs. 9 and 10).

``strong_scaling_study`` sweeps GPU counts and distribution strategies for a
ViT configuration using the training-step simulator, producing the efficiency
curves of Fig. 9.  ``weak_scaling_ensf`` measures the *real* per-step EnSF
cost at a laptop-feasible per-rank dimension and extends it to Frontier scale
with the ensemble-parallel cost model (per-rank work constant, a single
result reduction at the end), reproducing the flat weak-scaling behaviour of
Fig. 10.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.ensf import EnSF, EnSFConfig
from repro.core.observations import IdentityObservation
from repro.hpc.collectives import CollectiveKind, CollectiveModel
from repro.hpc.trainer_sim import DistributedTrainingSimulator, TrainingRunConfig
from repro.surrogate.vit import ViTConfig
from repro.utils.random import default_rng

__all__ = ["ScalingPoint", "EnSFScalingPoint", "strong_scaling_study", "weak_scaling_ensf"]


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a strong-scaling curve."""

    strategy: str
    n_gpus: int
    step_time: float
    throughput: float
    efficiency: float


@dataclass(frozen=True)
class EnSFScalingPoint:
    """One point of the EnSF weak-scaling curve (Fig. 10)."""

    dimension_per_rank: float
    n_gpus: int
    time_per_step: float
    measured_local_time: float


def strong_scaling_study(
    vit: ViTConfig,
    strategies: dict[str, object],
    gpu_counts: list[int],
    micro_batch: int | None = None,
    simulator: DistributedTrainingSimulator | None = None,
) -> list[ScalingPoint]:
    """Scaling sweep over strategies × GPU counts (Fig. 9).

    The per-GPU workload is fixed (throughput-vs-GPU-count scaling, as the
    paper plots); efficiency is the throughput per GPU normalised by the
    smallest allocation's throughput per GPU.

    Parameters
    ----------
    vit:
        Architecture to train (Table II presets for the paper's figures).
    strategies:
        Mapping from display name to strategy object (``DataParallel``,
        ``ZeROParallel``, ``FSDPParallel``).
    gpu_counts:
        GPU counts to sweep (the paper uses 8 … 1024).
    """
    simulator = simulator or DistributedTrainingSimulator()
    points: list[ScalingPoint] = []
    gpu_counts = sorted(int(g) for g in gpu_counts)
    for name, strategy in strategies.items():
        base_per_gpu_throughput = None
        for n in gpu_counts:
            run = TrainingRunConfig(vit=vit, n_gpus=n, micro_batch=micro_batch)
            step_time = simulator.step_time(run, strategy)
            throughput = run.global_batch / step_time
            if base_per_gpu_throughput is None:
                base_per_gpu_throughput = throughput / gpu_counts[0]
            efficiency = (throughput / n) / base_per_gpu_throughput
            points.append(
                ScalingPoint(
                    strategy=name,
                    n_gpus=n,
                    step_time=step_time,
                    throughput=throughput,
                    efficiency=efficiency,
                )
            )
    return points


def _measure_ensf_step(dimension: int, ensemble_size: int, n_sde_steps: int, seed: int) -> float:
    """Wall-clock time of one EnSF analysis at the given state dimension."""
    rng = default_rng(seed)
    ensemble = rng.standard_normal((ensemble_size, dimension))
    truth = rng.standard_normal(dimension)
    operator = IdentityObservation(dimension, obs_error_var=1.0)
    observation = operator.observe(truth, rng=rng)
    filter_ = EnSF(EnSFConfig(n_sde_steps=n_sde_steps, scale_states=False), rng=seed)
    start = time.perf_counter()
    filter_.analyze(ensemble, observation, operator)
    return time.perf_counter() - start


def weak_scaling_ensf(
    dimensions: list[float],
    gpu_counts: list[int],
    ensemble_size: int = 20,
    n_sde_steps: int = 20,
    measured_dimension: int = 50_000,
    collectives: CollectiveModel | None = None,
    seed: int = 0,
) -> list[EnSFScalingPoint]:
    """EnSF weak scaling: per-rank dimension fixed, ranks added (Fig. 10).

    The EnSF update is embarrassingly parallel over ensemble members /
    state blocks (paper §III-A3), so the per-step time at ``n`` GPUs equals
    the single-rank time on the per-rank share plus one small result
    reduction.  The single-rank time is *measured* at ``measured_dimension``
    and extrapolated linearly in the state dimension (the update cost is
    linear in the dimension); the reduction cost comes from the collective
    model.
    """
    collectives = collectives or CollectiveModel()
    local_time = _measure_ensf_step(measured_dimension, ensemble_size, n_sde_steps, seed)
    time_per_dim = local_time / measured_dimension

    points: list[EnSFScalingPoint] = []
    for dim in dimensions:
        for n in gpu_counts:
            per_rank_dim = float(dim)  # weak scaling: per-rank share is fixed
            compute = per_rank_dim * time_per_dim
            # Result reduction: the analysis-mean contribution of this rank
            # (per-rank state share, 8 bytes per value) is MPI-reduced once.
            reduce_time = collectives.time_seconds(
                CollectiveKind.ALL_REDUCE, per_rank_dim * 8.0 / max(n, 1), int(n)
            )
            points.append(
                EnSFScalingPoint(
                    dimension_per_rank=per_rank_dim,
                    n_gpus=int(n),
                    time_per_step=compute + reduce_time,
                    measured_local_time=local_time,
                )
            )
    return points
