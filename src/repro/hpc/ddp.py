"""Plain (unsharded) distributed data parallelism.

Every rank holds a full replica of the model; after the backward pass the
gradients are AllReduced in buckets.  This is the DDP baseline of Fig. 9 and
the reference against which the memory-efficient strategies (ZeRO, FSDP) are
compared.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hpc.collectives import CollectiveKind
from repro.hpc.comm import LocalCommGroup
from repro.hpc.memory import ShardingStrategy

__all__ = ["DataParallel", "CommEvent", "bucketize"]


@dataclass(frozen=True)
class CommEvent:
    """One collective operation issued during a training step."""

    kind: CollectiveKind
    message_bytes: float
    count: int = 1
    overlappable: bool = True

    @property
    def total_bytes(self) -> float:
        return self.message_bytes * self.count


def bucketize(total_bytes: float, bucket_bytes: float) -> list[float]:
    """Split a gradient volume into communication buckets.

    DDP and ZeRO fuse many small tensors into buckets (default 200 MB in
    PyTorch Lightning's DeepSpeed plugin, the value the paper tunes to
    ~500 MB); the message size seen by the interconnect is the bucket size,
    which matters because collective bandwidth is message-size dependent.
    """
    if total_bytes < 0 or bucket_bytes <= 0:
        raise ValueError("sizes must be positive")
    if total_bytes == 0:
        return []
    n_full = int(total_bytes // bucket_bytes)
    buckets = [bucket_bytes] * n_full
    remainder = total_bytes - n_full * bucket_bytes
    if remainder > 0:
        buckets.append(remainder)
    return buckets


class DataParallel:
    """DDP strategy: full replication, bucketed gradient AllReduce."""

    name = "DDP"
    strategy = ShardingStrategy.DDP

    def __init__(self, bucket_bytes: float = 200 * 2.0**20):
        if bucket_bytes <= 0:
            raise ValueError("bucket_bytes must be positive")
        self.bucket_bytes = float(bucket_bytes)

    # ----------------------------- cost model ------------------------- #
    def comm_events(self, param_bytes: float, n_gpus: int) -> list[CommEvent]:
        """Collectives issued per optimisation step."""
        if n_gpus <= 1:
            return []
        return [
            CommEvent(CollectiveKind.ALL_REDUCE, b, overlappable=True)
            for b in bucketize(param_bytes, self.bucket_bytes)
        ]

    # --------------------------- executable path ----------------------- #
    def synchronize_gradients(
        self, comm: LocalCommGroup, per_rank_grads: list[list[np.ndarray]]
    ) -> list[list[np.ndarray]]:
        """AllReduce-average gradients across ranks (the real DDP step).

        ``per_rank_grads[rank]`` is the list of gradient arrays held by that
        rank; the returned structure has identical, averaged gradients on
        every rank — verified against a NumPy reference in the tests.
        """
        n_ranks = comm.n_ranks
        if len(per_rank_grads) != n_ranks:
            raise ValueError("per_rank_grads must have one entry per rank")
        n_tensors = len(per_rank_grads[0])
        out: list[list[np.ndarray]] = [[] for _ in range(n_ranks)]
        for t in range(n_tensors):
            buffers = [per_rank_grads[r][t] for r in range(n_ranks)]
            reduced = comm.allreduce(buffers, op="mean")
            for r in range(n_ranks):
                out[r].append(reduced[r])
        return out
