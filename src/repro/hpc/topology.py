"""Frontier system topology model.

Encodes the hardware facts the paper states in §IV: each Frontier node has
four AMD Instinct MI250X accelerators, each with two Graphics Compute Dies
(GCDs) that are treated as independent GPUs — eight effective GPUs per node,
each with 64 GB of HBM.  GCDs within a node are connected by Infinity Fabric
(100 GB/s, 200 GB/s between the two GCDs of one MI250X) and nodes are
connected by a Slingshot-11 network providing 100 GB/s of injection
bandwidth.  Frontier has 9408 nodes (75,264 effective GPUs).

These numbers parameterise the collective-communication and training-step
cost models; they are data, not measurements, so the scaling benchmarks can
state their assumptions explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "NodeSpec", "FrontierTopology"]


@dataclass(frozen=True)
class GPUSpec:
    """One effective GPU (a single MI250X GCD)."""

    name: str = "MI250X-GCD"
    memory_gb: float = 64.0
    peak_tflops_fp32: float = 47.9
    peak_tflops_bf16: float = 191.5
    memory_bandwidth_gbs: float = 1638.0

    def peak_flops(self, precision: str = "bf16") -> float:
        """Peak FLOP/s for the requested precision."""
        if precision == "bf16":
            return self.peak_tflops_bf16 * 1.0e12
        if precision == "fp32":
            return self.peak_tflops_fp32 * 1.0e12
        raise ValueError(f"unknown precision {precision!r}")


@dataclass(frozen=True)
class NodeSpec:
    """One Frontier compute node."""

    gpus_per_node: int = 8
    gpu: GPUSpec = GPUSpec()
    intra_node_bandwidth_gbs: float = 100.0
    same_mi250x_bandwidth_gbs: float = 200.0
    network_injection_gbs: float = 100.0

    def __post_init__(self) -> None:
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be positive")


@dataclass(frozen=True)
class FrontierTopology:
    """The full system: nodes, per-node layout and interconnect."""

    node: NodeSpec = NodeSpec()
    n_nodes: int = 9408

    @property
    def total_gpus(self) -> int:
        """Total number of effective GPUs (GCDs) in the system."""
        return self.n_nodes * self.node.gpus_per_node

    def nodes_for(self, n_gpus: int) -> int:
        """Number of nodes needed to host ``n_gpus`` (packed allocation)."""
        if n_gpus < 1:
            raise ValueError("n_gpus must be positive")
        if n_gpus > self.total_gpus:
            raise ValueError(f"requested {n_gpus} GPUs but the system has {self.total_gpus}")
        per_node = self.node.gpus_per_node
        return (n_gpus + per_node - 1) // per_node

    def is_single_node(self, n_gpus: int) -> bool:
        """True when the job fits on a single node (intra-node links only)."""
        return n_gpus <= self.node.gpus_per_node

    def link_bandwidth_gbs(self, n_gpus: int) -> float:
        """Per-GPU bandwidth of the slowest link a collective must cross.

        Within a node this is Infinity Fabric; across nodes the Slingshot
        injection bandwidth is shared by the node's GPUs participating in the
        collective, which is why inter-node collectives are markedly slower —
        the effect behind the paper's communication-bound regime at scale.
        """
        if self.is_single_node(n_gpus):
            return self.node.intra_node_bandwidth_gbs
        gpus_per_node = min(n_gpus, self.node.gpus_per_node)
        return self.node.network_injection_gbs / gpus_per_node

    def aggregate_compute_tflops(self, n_gpus: int, precision: str = "bf16") -> float:
        """Aggregate peak TFLOP/s of an ``n_gpus`` allocation."""
        return n_gpus * self.node.gpu.peak_flops(precision) / 1.0e12
