"""Simulated-Frontier HPC substrate plus real local parallelism.

The paper's scalability results were obtained on the Frontier exascale system
(AMD MI250X GPUs, RCCL collectives, Slingshot-11 interconnect) which we do
not have.  Following the substitution policy in DESIGN.md this subpackage
provides:

* an analytical **performance model** of Frontier: node/system topology
  (:mod:`topology`), collective-communication cost models with empirically
  calibrated bandwidth curves (:mod:`collectives`), a GEMM efficiency model
  for kernel sizing (:mod:`gemm`) and training memory accounting
  (:mod:`memory`);
* **executable** distributed-training bookkeeping: parameter sharding and
  collective algorithms run for real on NumPy buffers through
  :class:`~repro.hpc.comm.LocalCommGroup`, with DDP / DeepSpeed-ZeRO / FSDP
  strategies in :mod:`ddp`, :mod:`zero` and :mod:`fsdp`;
* a **distributed-training step simulator** (:mod:`trainer_sim`) and scaling
  harness (:mod:`scaling`) that regenerate the shapes of Figs. 7–10;
* a real **multiprocessing ensemble executor** (:mod:`ensemble_parallel`)
  exercising the paper's ensemble-parallel EnSF/forecast code path locally.
"""

from repro.hpc.topology import GPUSpec, NodeSpec, FrontierTopology
from repro.hpc.collectives import CollectiveModel, CollectiveKind
from repro.hpc.gemm import GEMMPerformanceModel, vit_achieved_tflops
from repro.hpc.memory import TrainingMemoryModel, ShardingStrategy, STRATEGY_TABLE
from repro.hpc.comm import LocalCommGroup
from repro.hpc.ddp import DataParallel
from repro.hpc.zero import ZeROParallel
from repro.hpc.fsdp import FSDPParallel
from repro.hpc.trainer_sim import DistributedTrainingSimulator, StepBreakdown, TrainingRunConfig
from repro.hpc.scaling import (
    strong_scaling_study,
    weak_scaling_ensf,
    ScalingPoint,
    EnSFScalingPoint,
)
from repro.hpc.ensemble_parallel import EnsembleExecutor, ShardRetryError, ensemble_slices

__all__ = [
    "GPUSpec",
    "NodeSpec",
    "FrontierTopology",
    "CollectiveModel",
    "CollectiveKind",
    "GEMMPerformanceModel",
    "vit_achieved_tflops",
    "TrainingMemoryModel",
    "ShardingStrategy",
    "STRATEGY_TABLE",
    "LocalCommGroup",
    "DataParallel",
    "ZeROParallel",
    "FSDPParallel",
    "DistributedTrainingSimulator",
    "StepBreakdown",
    "TrainingRunConfig",
    "strong_scaling_study",
    "weak_scaling_ensf",
    "ScalingPoint",
    "EnSFScalingPoint",
    "EnsembleExecutor",
    "ShardRetryError",
    "ensemble_slices",
]
