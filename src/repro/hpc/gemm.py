"""GEMM efficiency model for MI250X kernel sizing (paper Fig. 6).

The paper's single-node study shows that the achieved training throughput of
the ViT surrogate (20–52 TFLOPS per GCD) is governed by kernel shapes: the
embedding dimension, the number of attention heads and the MLP-to-attention
ratio.  The qualitative findings are:

* an embedding dimension around 2048 performs best;
* more attention heads reduce performance (smaller per-head GEMMs);
* increasing the MLP weight (ratio) improves overall throughput because the
  MLP GEMMs are large and efficient.

This module provides an analytical GEMM-efficiency model with those
properties and an aggregator that converts a :class:`ViTConfig` into achieved
TFLOPS, which the Fig. 6 benchmark sweeps into a heatmap.  The constants are
modelling assumptions chosen to land in the paper's measured 20–52 TFLOPS
range — they are not MI250X measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hpc.topology import GPUSpec
from repro.surrogate.flops import vit_layer_flops
from repro.surrogate.vit import ViTConfig

__all__ = ["GEMMPerformanceModel", "vit_achieved_tflops"]


@dataclass(frozen=True)
class GEMMPerformanceModel:
    """Achieved throughput of a single GEMM ``(m × k) · (k × n)`` on one GCD.

    Efficiency is modelled as the product of
    * a size ramp (small GEMMs are launch/memory bound),
    * an alignment bonus for dimensions that are multiples of the MFMA tile,
    * a cap at ``max_efficiency`` of the peak.
    """

    gpu: GPUSpec = GPUSpec()
    precision: str = "bf16"
    max_efficiency: float = 0.28
    half_efficiency_gflop: float = 2.0
    tile: int = 256

    def efficiency(self, m: int, n: int, k: int, batch_count: int = 1) -> float:
        """Fraction of peak achieved by a (possibly batched) GEMM.

        ``batch_count`` GEMMs of identical shape issued as one batched call
        (e.g. the per-head attention GEMMs) amortise launch overhead, so the
        size ramp uses the *total* batched work while the narrowness penalty
        still reflects the per-matrix dimensions.
        """
        if min(m, n, k) <= 0 or batch_count < 1:
            raise ValueError("GEMM dimensions and batch_count must be positive")
        gflop_total = 2.0 * m * n * k * batch_count / 1.0e9
        size_ramp = gflop_total / (gflop_total + self.half_efficiency_gflop)
        # Narrow inner/outer dimensions under-utilise the MFMA pipelines.
        narrowness = min(m, n, k) / (min(m, n, k) + 64.0)
        alignment = 1.0 if (n % self.tile == 0 and k % self.tile == 0) else 0.85
        return float(self.max_efficiency * size_ramp * narrowness * alignment)

    def achieved_tflops(self, m: int, n: int, k: int, batch_count: int = 1) -> float:
        """Achieved TFLOPS of the (batched) GEMM."""
        return (
            self.efficiency(m, n, k, batch_count)
            * self.gpu.peak_flops(self.precision)
            / 1.0e12
        )

    def time_seconds(self, m: int, n: int, k: int, batch_count: int = 1) -> float:
        """Execution time of the (batched) GEMM."""
        flops = 2.0 * m * n * k * batch_count
        return flops / (self.achieved_tflops(m, n, k, batch_count) * 1.0e12)


def _vit_gemm_shapes(config: ViTConfig, batch_size: int) -> dict[str, tuple[tuple[int, int, int], int]]:
    """GEMM shapes of one transformer block as ``(m, n, k), batch_count``.

    Token dimensions are folded into ``m`` for the dense projections; the
    attention score/context products are batched over ``batch × heads``
    matrices of per-head size, which is what makes many heads inefficient.
    """
    n_tokens = batch_size * config.n_patches
    d = config.embed_dim
    dh = d // config.num_heads
    hidden = int(round(d * config.mlp_ratio))
    attn_batch = batch_size * config.num_heads
    return {
        "qkv": ((n_tokens, 3 * d, d), 1),
        "attention_scores": ((config.n_patches, config.n_patches, dh), attn_batch),
        "attention_context": ((config.n_patches, dh, config.n_patches), attn_batch),
        "projection": ((n_tokens, d, d), 1),
        "mlp": ((n_tokens, hidden, d), 1),
    }


def vit_achieved_tflops(
    config: ViTConfig,
    batch_size: int = 8,
    model: GEMMPerformanceModel | None = None,
    backward_factor: float = 2.0,
) -> float:
    """Achieved per-GCD training TFLOPS of a ViT layer configuration.

    The per-block FLOPs (forward + backward, ``backward_factor`` ≈ 2×) are
    divided by the time each GEMM group takes under the efficiency model.
    This is the quantity the Fig. 6 heatmap sweeps over embedding dimension,
    head count and MLP ratio.
    """
    model = model or GEMMPerformanceModel()
    flops = vit_layer_flops(config, batch_size=batch_size)
    shapes = _vit_gemm_shapes(config, batch_size)

    total_flops = 0.0
    total_time = 0.0
    for name, group_flops in flops.items():
        (m, n, k), batch_count = shapes[name]
        group_flops_total = group_flops * (1.0 + backward_factor)
        time = group_flops_total / (model.achieved_tflops(m, n, k, batch_count) * 1.0e12)
        total_flops += group_flops_total
        total_time += time
    if total_time == 0.0:
        return 0.0
    return total_flops / total_time / 1.0e12
