"""DeepSpeed-ZeRO style memory-efficient data parallelism.

ZeRO partitions training state across data-parallel ranks (Table I):

* **stage 1** — optimizer states are sharded; gradients are reduce-scattered
  so each rank owns the gradient shard it needs for its optimizer partition,
  and the updated parameters are all-gathered back;
* **stage 2** — gradients are also kept sharded between steps (same
  communication pattern, less memory);
* **stage 3** — parameters are sharded too, requiring parameter all-gathers
  in both the forward and the backward pass (≈50 % more communication).

The ``bucket_bytes`` knob mirrors DeepSpeed's ``allgather_bucket_size`` /
``reduce_bucket_size``: the paper finds the PyTorch-Lightning default of
200 MB sits in the AllReduce bandwidth dip and that ~500 MB buckets restore
85 % scaling efficiency for the 256² model (Fig. 9).
"""

from __future__ import annotations

import numpy as np

from repro.hpc.collectives import CollectiveKind
from repro.hpc.comm import LocalCommGroup
from repro.hpc.ddp import CommEvent, bucketize
from repro.hpc.memory import ShardingStrategy

__all__ = ["ZeROParallel"]

_STAGE_TO_STRATEGY = {
    1: ShardingStrategy.ZERO_1,
    2: ShardingStrategy.ZERO_2,
    3: ShardingStrategy.ZERO_3,
}


class ZeROParallel:
    """ZeRO stage 1/2/3 communication and sharding bookkeeping."""

    def __init__(self, stage: int = 1, bucket_bytes: float = 200 * 2.0**20):
        if stage not in (1, 2, 3):
            raise ValueError("ZeRO stage must be 1, 2 or 3")
        if bucket_bytes <= 0:
            raise ValueError("bucket_bytes must be positive")
        self.stage = stage
        self.bucket_bytes = float(bucket_bytes)

    @property
    def name(self) -> str:
        return f"DeepSpeed-ZeRO-{self.stage}"

    @property
    def strategy(self) -> ShardingStrategy:
        return _STAGE_TO_STRATEGY[self.stage]

    # ----------------------------- cost model ------------------------- #
    def comm_events(self, param_bytes: float, n_gpus: int) -> list[CommEvent]:
        """Collectives per optimisation step.

        Stage 1 averages gradients with bucketed **AllReduce** (this is why
        the paper's Fig. 9 discussion ties the default 200 MB bucket to the
        AllReduce bandwidth dip of Fig. 8).  Stage 2 keeps gradients sharded:
        reduce-scatter of gradients plus all-gather of updated parameters
        (together the volume of one AllReduce).  Stage 3 adds a second
        parameter all-gather during the backward pass, the ≈50 % extra
        communication the paper attributes to full sharding.
        """
        if n_gpus <= 1:
            return []
        events: list[CommEvent] = []
        if self.stage == 1:
            for b in bucketize(param_bytes, self.bucket_bytes):
                events.append(CommEvent(CollectiveKind.ALL_REDUCE, b, overlappable=True))
            return events
        for b in bucketize(param_bytes, self.bucket_bytes):
            events.append(CommEvent(CollectiveKind.REDUCE_SCATTER, b, overlappable=True))
        for b in bucketize(param_bytes, self.bucket_bytes):
            events.append(CommEvent(CollectiveKind.ALL_GATHER, b, overlappable=True))
        if self.stage == 3:
            for b in bucketize(param_bytes, self.bucket_bytes):
                events.append(CommEvent(CollectiveKind.ALL_GATHER, b, overlappable=False))
        return events

    # --------------------------- executable path ----------------------- #
    def shard_optimizer_state(self, flat_state: np.ndarray, n_ranks: int) -> list[np.ndarray]:
        """Partition a flattened optimizer-state vector across ranks (stage ≥ 1)."""
        flat_state = np.asarray(flat_state, dtype=float).ravel()
        chunk = -(-flat_state.size // n_ranks)
        padded = np.zeros(chunk * n_ranks)
        padded[: flat_state.size] = flat_state
        return [padded[r * chunk : (r + 1) * chunk].copy() for r in range(n_ranks)]

    def step(
        self,
        comm: LocalCommGroup,
        per_rank_params: list[np.ndarray],
        per_rank_grads: list[np.ndarray],
        learning_rate: float = 0.1,
    ) -> list[np.ndarray]:
        """One ZeRO optimisation step on flattened parameter/gradient vectors.

        Each rank holds the full (replicated) parameter vector and its local
        gradient.  The step reduce-scatters the gradients, applies an SGD
        update to the locally-owned shard, and all-gathers the updated
        parameters — the stage-1/2 data flow.  The result is identical on
        every rank and equals the equivalent single-process SGD step, which
        is what the unit tests assert.
        """
        n_ranks = comm.n_ranks
        params = [np.asarray(p, dtype=float).ravel() for p in per_rank_params]
        size = params[0].size
        grad_shards = comm.reduce_scatter(per_rank_grads, op="mean")
        chunk = grad_shards[0].size

        updated_shards = []
        for rank in range(n_ranks):
            start = rank * chunk
            stop = min(start + chunk, size)
            local = params[rank][start:stop].copy()
            local -= learning_rate * grad_shards[rank][: stop - start]
            padded = np.zeros(chunk)
            padded[: stop - start] = local
            updated_shards.append(padded)

        gathered = comm.allgather(updated_shards)
        return [g[:size].copy() for g in gathered]
