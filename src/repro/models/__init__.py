"""Forecast-model substrates: SQG turbulence, Lorenz-96, model-error processes."""

from repro.models.base import ForecastModel, propagate_ensemble
from repro.models.spectral import SpectralGrid
from repro.models.sqg import SQGModel, SQGParameters, spinup_sqg
from repro.models.lorenz96 import Lorenz96
from repro.models.model_error import StochasticModelErrorMixture, ModelErrorComponent

__all__ = [
    "ForecastModel",
    "propagate_ensemble",
    "SpectralGrid",
    "SQGModel",
    "SQGParameters",
    "spinup_sqg",
    "Lorenz96",
    "StochasticModelErrorMixture",
    "ModelErrorComponent",
]
