"""Spectral (FFT) machinery for the SQG model.

The SQG model is discretised in spectral space using the real 2-D FFT, with a
2/3-rule dealiasing mask applied to nonlinear products and spectral
derivatives computed by multiplication with ``i k`` (paper §II-B, following
Tulloch & Smith 2009 and the ``sqgturb`` reference implementation).

All transforms operate on the trailing two axes so that batched states
(ensembles) of shape ``(..., nlev, ny, nx)`` are handled with a single FFT
call — this is the main vectorisation lever for ensemble forecasting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SpectralGrid"]


@dataclass(frozen=True)
class _SpectralArrays:
    k: np.ndarray
    l: np.ndarray
    ksq: np.ndarray
    dealias_mask: np.ndarray


class SpectralGrid:
    """Wavenumber bookkeeping and transforms for a doubly-periodic grid.

    Parameters
    ----------
    nx, ny:
        Number of grid points in x and y (physical space).
    lx, ly:
        Physical domain lengths (metres).
    dealias:
        Apply the 2/3 rule when truncating spectra of nonlinear products.
    """

    def __init__(self, nx: int, ny: int, lx: float, ly: float, dealias: bool = True):
        if nx < 4 or ny < 4:
            raise ValueError("spectral grid needs at least 4 points per direction")
        if nx % 2 or ny % 2:
            raise ValueError("nx and ny must be even for the rfft layout used here")
        self.nx = int(nx)
        self.ny = int(ny)
        self.lx = float(lx)
        self.ly = float(ly)
        self.dealias = bool(dealias)

        # rfft2 layout: full frequencies along y (axis -2), half along x (axis -1).
        kx = 2.0 * np.pi / self.lx * np.arange(0, self.nx // 2 + 1)
        ky = 2.0 * np.pi / self.ly * np.fft.fftfreq(self.ny) * self.ny
        k2d, l2d = np.meshgrid(kx, ky)
        ksq = k2d**2 + l2d**2

        kmax_x = 2.0 * np.pi / self.lx * (self.nx // 2)
        kmax_y = 2.0 * np.pi / self.ly * (self.ny // 2)
        mask = np.ones_like(ksq)
        if self.dealias:
            mask = np.where(
                (np.abs(k2d) > (2.0 / 3.0) * kmax_x) | (np.abs(l2d) > (2.0 / 3.0) * kmax_y),
                0.0,
                1.0,
            )

        self._arrays = _SpectralArrays(k=k2d, l=l2d, ksq=ksq, dealias_mask=mask)

    # ------------------------------------------------------------------ #
    # wavenumber arrays
    # ------------------------------------------------------------------ #
    @property
    def k(self) -> np.ndarray:
        """Zonal wavenumbers, shape ``(ny, nx//2+1)``."""
        return self._arrays.k

    @property
    def l(self) -> np.ndarray:
        """Meridional wavenumbers, shape ``(ny, nx//2+1)``."""
        return self._arrays.l

    @property
    def ksq(self) -> np.ndarray:
        """Squared total wavenumber ``k² + l²``."""
        return self._arrays.ksq

    @property
    def kappa(self) -> np.ndarray:
        """Total wavenumber magnitude ``sqrt(k² + l²)``."""
        return np.sqrt(self._arrays.ksq)

    @property
    def ksq_max(self) -> float:
        """Largest resolved squared wavenumber (used to scale hyperdiffusion)."""
        return float(self._arrays.ksq.max())

    @property
    def dealias_mask(self) -> np.ndarray:
        """2/3-rule mask (ones where retained, zeros where truncated)."""
        return self._arrays.dealias_mask

    @property
    def spectral_shape(self) -> tuple[int, int]:
        """Shape of spectral arrays ``(ny, nx//2+1)``."""
        return (self.ny, self.nx // 2 + 1)

    # ------------------------------------------------------------------ #
    # transforms (batched over leading axes)
    # ------------------------------------------------------------------ #
    def to_spectral(self, field: np.ndarray) -> np.ndarray:
        """Forward transform of the trailing ``(ny, nx)`` axes."""
        field = np.asarray(field)
        self._check_physical(field)
        return np.fft.rfft2(field, axes=(-2, -1))

    def to_physical(self, spec: np.ndarray) -> np.ndarray:
        """Inverse transform returning a real field on the trailing axes."""
        spec = np.asarray(spec)
        self._check_spectral(spec)
        return np.fft.irfft2(spec, s=(self.ny, self.nx), axes=(-2, -1))

    def truncate(self, spec: np.ndarray) -> np.ndarray:
        """Apply the 2/3 dealiasing mask to a spectral array."""
        self._check_spectral(np.asarray(spec))
        return spec * self.dealias_mask

    # ------------------------------------------------------------------ #
    # spectral calculus
    # ------------------------------------------------------------------ #
    def ddx(self, spec: np.ndarray) -> np.ndarray:
        """Spectral x-derivative (returns a spectral array)."""
        return 1j * self.k * spec

    def ddy(self, spec: np.ndarray) -> np.ndarray:
        """Spectral y-derivative (returns a spectral array)."""
        return 1j * self.l * spec

    def laplacian(self, spec: np.ndarray) -> np.ndarray:
        """Spectral Laplacian ``-(k²+l²)``."""
        return -self.ksq * spec

    def gradient_physical(self, spec: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Physical-space gradient ``(∂/∂x, ∂/∂y)`` of a spectral field."""
        return self.to_physical(self.ddx(spec)), self.to_physical(self.ddy(spec))

    def jacobian(self, psi_spec: np.ndarray, theta_spec: np.ndarray) -> np.ndarray:
        """Advective Jacobian ``J(ψ, θ) = ψ_x θ_y − ψ_y θ_x`` in spectral space.

        Products are formed in physical space with dealiased inputs and the
        result is transformed back and truncated, following the standard
        pseudo-spectral 2/3-rule treatment.
        """
        psi_spec = self.truncate(psi_spec)
        theta_spec = self.truncate(theta_spec)
        psi_x, psi_y = self.gradient_physical(psi_spec)
        th_x, th_y = self.gradient_physical(theta_spec)
        jac = psi_x * th_y - psi_y * th_x
        return self.truncate(self.to_spectral(jac))

    def hyperdiffusion_filter(
        self, dt: float, efolding_time: float, order: int = 8
    ) -> np.ndarray:
        """Implicit hyperdiffusion multiplier applied once per time step.

        Damps the largest resolved wavenumber with e-folding time
        ``efolding_time`` and scales as ``(K²/K²_max)^(order/2)`` — this is
        the implicit hyperdiffusion treatment referenced in §II-B.
        """
        if efolding_time <= 0:
            raise ValueError("efolding_time must be positive")
        if order <= 0 or order % 2:
            raise ValueError("hyperdiffusion order must be a positive even integer")
        ratio = self.ksq / self.ksq_max
        return np.exp(-(dt / efolding_time) * ratio ** (order // 2))

    # ------------------------------------------------------------------ #
    # validation helpers
    # ------------------------------------------------------------------ #
    def _check_physical(self, field: np.ndarray) -> None:
        if field.shape[-2:] != (self.ny, self.nx):
            raise ValueError(
                f"physical field trailing shape {field.shape[-2:]} != {(self.ny, self.nx)}"
            )

    def _check_spectral(self, spec: np.ndarray) -> None:
        if spec.shape[-2:] != self.spectral_shape:
            raise ValueError(
                f"spectral field trailing shape {spec.shape[-2:]} != {self.spectral_shape}"
            )
