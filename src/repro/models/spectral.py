"""Spectral (FFT) machinery for the SQG model.

The SQG model is discretised in spectral space using the real 2-D FFT, with a
2/3-rule dealiasing mask applied to nonlinear products and spectral
derivatives computed by multiplication with ``i k`` (paper §II-B, following
Tulloch & Smith 2009 and the ``sqgturb`` reference implementation).

All transforms operate on the trailing two axes so that batched states
(ensembles) of shape ``(..., nlev, ny, nx)`` are handled with a single FFT
call — this is the main vectorisation lever for ensemble forecasting.

Transforms are routed through the pluggable backend shim
(:mod:`repro.utils.fft`): :mod:`scipy.fft` with multi-worker support when
available, :mod:`numpy.fft` otherwise.  Both produce bit-identical results.
When the grid's array backend is a device backend, the FFT backend defaults
to its device-paired counterpart (``mock-device`` → metered numpy FFT,
``cuda`` → ``cupy.fft``) so spectral state stays device-resident through
every transform; an explicit FFT selection still wins.

Fused-kernel support
--------------------
The 2/3 rule zeroes every column with ``|k_x|`` above the cutoff, so a masked
spectrum carries information only in its first :attr:`kx_keep` columns.  The
*retained-mode* transforms (:meth:`to_physical_retained`,
:meth:`to_spectral_retained`) exploit this by feeding the FFT only the
retained columns — bit-identical to transforming the full masked spectrum
(the dropped columns are exact zeros) while skipping a third of the
column-direction transform work.  Combined derivative-plus-dealias
multipliers (:attr:`ikx_dealias`, :attr:`ily_dealias`) fold
``truncate``-then-``ddx`` into one multiply; because the mask entries are
exactly 0 or 1, ``(i·k·mask)·θ̂`` is bit-identical to ``i·k·(mask·θ̂)``.
These are the building blocks of the fused SQG tendency kernel
(:meth:`repro.models.sqg.SQGModel.step_spectral`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.fft import FFTBackend, default_backend_name_for, resolve_backend
from repro.utils.xp import ArrayBackend
from repro.utils.xp import resolve_backend as resolve_array_backend

__all__ = ["SpectralGrid"]


@dataclass(frozen=True)
class _SpectralArrays:
    k: np.ndarray
    l: np.ndarray
    ksq: np.ndarray
    dealias_mask: np.ndarray


class SpectralGrid:
    """Wavenumber bookkeeping and transforms for a doubly-periodic grid.

    Parameters
    ----------
    nx, ny:
        Number of grid points in x and y (physical space).
    lx, ly:
        Physical domain lengths (metres).
    dealias:
        Apply the 2/3 rule when truncating spectra of nonlinear products.
    backend:
        FFT backend name (``"numpy"``/``"scipy"``/``"mock-device"``/
        ``"cupy"``), an :class:`~repro.utils.fft.FFTBackend`, or ``None``
        for the process-wide default (``REPRO_FFT_BACKEND`` / auto-detection,
        paired to the array backend's device when that is a device backend —
        see :func:`repro.utils.fft.default_backend_name_for`).
    array_backend:
        Array backend (:mod:`repro.utils.xp`) for the non-FFT spectral
        arithmetic; ``None`` uses the ``REPRO_ARRAY_BACKEND`` default.  The
        numpy backend is bit-identical to the pre-shim grid.
    """

    def __init__(
        self,
        nx: int,
        ny: int,
        lx: float,
        ly: float,
        dealias: bool = True,
        backend: str | FFTBackend | None = None,
        array_backend: str | ArrayBackend | None = None,
    ):
        if nx < 4 or ny < 4:
            raise ValueError("spectral grid needs at least 4 points per direction")
        if nx % 2 or ny % 2:
            raise ValueError("nx and ny must be even for the rfft layout used here")
        self.nx = int(nx)
        self.ny = int(ny)
        self.lx = float(lx)
        self.ly = float(ly)
        self.dealias = bool(dealias)
        self.xp = resolve_array_backend(array_backend)
        if backend is None:
            # Pair the FFT to the array backend's device so device-resident
            # spectral state transforms without host round-trips (explicit
            # env/override selection wins inside default_backend_name_for).
            backend = default_backend_name_for(self.xp.device)
        self.fft = resolve_backend(backend)

        # rfft2 layout: full frequencies along y (axis -2), half along x (axis -1).
        kx = 2.0 * np.pi / self.lx * np.arange(0, self.nx // 2 + 1)
        ky = 2.0 * np.pi / self.ly * np.fft.fftfreq(self.ny) * self.ny
        k2d, l2d = np.meshgrid(kx, ky)
        ksq = k2d**2 + l2d**2

        kmax_x = 2.0 * np.pi / self.lx * (self.nx // 2)
        kmax_y = 2.0 * np.pi / self.ly * (self.ny // 2)
        mask = np.ones_like(ksq)
        if self.dealias:
            mask = np.where(
                (np.abs(k2d) > (2.0 / 3.0) * kmax_x) | (np.abs(l2d) > (2.0 / 3.0) * kmax_y),
                0.0,
                1.0,
            )

        self._arrays = _SpectralArrays(k=k2d, l=l2d, ksq=ksq, dealias_mask=mask)

        # Cached derived arrays (satellite: kappa was recomputed per access).
        self._kappa = np.sqrt(ksq)
        self._ksq_max = float(ksq.max())
        self._hyperdiff_cache: dict[tuple[float, float, int], np.ndarray] = {}

        # Number of retained kx columns: every column at index >= kx_keep is
        # zeroed by the mask, so masked spectra are fully described by their
        # first kx_keep columns (= nx//2+1 when dealiasing is off).
        retained_cols = np.nonzero(mask.any(axis=0))[0]
        self._kx_keep = int(retained_cols[-1]) + 1
        self._ikx_dealias = 1j * k2d * mask
        self._ily_dealias = 1j * l2d * mask

    # ------------------------------------------------------------------ #
    # wavenumber arrays
    # ------------------------------------------------------------------ #
    @property
    def k(self) -> np.ndarray:
        """Zonal wavenumbers, shape ``(ny, nx//2+1)``."""
        return self._arrays.k

    @property
    def l(self) -> np.ndarray:
        """Meridional wavenumbers, shape ``(ny, nx//2+1)``."""
        return self._arrays.l

    @property
    def ksq(self) -> np.ndarray:
        """Squared total wavenumber ``k² + l²``."""
        return self._arrays.ksq

    @property
    def kappa(self) -> np.ndarray:
        """Total wavenumber magnitude ``sqrt(k² + l²)`` (cached)."""
        return self._kappa

    @property
    def ksq_max(self) -> float:
        """Largest resolved squared wavenumber (used to scale hyperdiffusion)."""
        return self._ksq_max

    @property
    def dealias_mask(self) -> np.ndarray:
        """2/3-rule mask (ones where retained, zeros where truncated)."""
        return self._arrays.dealias_mask

    @property
    def kx_keep(self) -> int:
        """Number of leading kx columns a masked spectrum can be non-zero in."""
        return self._kx_keep

    @property
    def ikx_dealias(self) -> np.ndarray:
        """Combined multiplier ``i·k·mask`` (x-derivative of a truncated field)."""
        return self._ikx_dealias

    @property
    def ily_dealias(self) -> np.ndarray:
        """Combined multiplier ``i·l·mask`` (y-derivative of a truncated field)."""
        return self._ily_dealias

    @property
    def spectral_shape(self) -> tuple[int, int]:
        """Shape of spectral arrays ``(ny, nx//2+1)``."""
        return (self.ny, self.nx // 2 + 1)

    # ------------------------------------------------------------------ #
    # transforms (batched over leading axes)
    # ------------------------------------------------------------------ #
    def to_spectral(self, field: np.ndarray) -> np.ndarray:
        """Forward transform of the trailing ``(ny, nx)`` axes.

        Accepts host or backend-device arrays; ``xp.asarray`` keeps
        device-resident inputs on the device (the paired FFT backend
        transforms them in place there).
        """
        field = self.xp.asarray(field)
        self._check_physical(field)
        return self.fft.rfft2(field, axes=(-2, -1))

    def to_physical(self, spec: np.ndarray) -> np.ndarray:
        """Inverse transform returning a real field on the trailing axes."""
        spec = self.xp.asarray(spec)
        self._check_spectral(spec)
        return self.fft.irfft2(spec, s=(self.ny, self.nx), axes=(-2, -1))

    def to_physical_retained(self, spec_retained: np.ndarray) -> np.ndarray:
        """Inverse transform of the retained columns of a masked spectrum.

        ``spec_retained`` holds the first :attr:`kx_keep` columns of a
        2/3-truncated spectrum; the remaining columns are exact zeros and are
        never materialised.  Bit-identical to
        ``to_physical(full_masked_spectrum)``.
        """
        spec_retained = self.xp.asarray(spec_retained)
        if spec_retained.shape[-2:] != (self.ny, self._kx_keep):
            raise ValueError(
                f"retained spectrum trailing shape {spec_retained.shape[-2:]} "
                f"!= {(self.ny, self._kx_keep)}"
            )
        w = self.fft.ifft(spec_retained, axis=-2)
        return self.fft.irfft(w, n=self.nx, axis=-1)

    def to_spectral_retained(self, field: np.ndarray) -> np.ndarray:
        """Forward transform returning only the first :attr:`kx_keep` columns.

        The result is *not* row-masked; multiply by
        ``dealias_mask[:, :kx_keep]`` to complete the 2/3 truncation.
        Bit-identical to ``to_spectral(field)[..., :kx_keep]``.
        """
        field = self.xp.asarray(field)
        self._check_physical(field)
        r = self.fft.rfft(field, axis=-1)
        return self.fft.fft(r[..., : self._kx_keep], axis=-2)

    def truncate(self, spec: np.ndarray) -> np.ndarray:
        """Apply the 2/3 dealiasing mask to a spectral array."""
        self._check_spectral(self.xp.asarray(spec))
        return self.xp.multiply(spec, self.dealias_mask)

    # ------------------------------------------------------------------ #
    # spectral calculus
    # ------------------------------------------------------------------ #
    def ddx(self, spec: np.ndarray) -> np.ndarray:
        """Spectral x-derivative (returns a spectral array)."""
        return 1j * self.k * spec

    def ddy(self, spec: np.ndarray) -> np.ndarray:
        """Spectral y-derivative (returns a spectral array)."""
        return 1j * self.l * spec

    def laplacian(self, spec: np.ndarray) -> np.ndarray:
        """Spectral Laplacian ``-(k²+l²)``."""
        return -self.ksq * spec

    def gradient_physical(self, spec: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Physical-space gradient ``(∂/∂x, ∂/∂y)`` of a spectral field."""
        return self.to_physical(self.ddx(spec)), self.to_physical(self.ddy(spec))

    def jacobian(self, psi_spec: np.ndarray, theta_spec: np.ndarray) -> np.ndarray:
        """Advective Jacobian ``J(ψ, θ) = ψ_x θ_y − ψ_y θ_x`` in spectral space.

        Products are formed in physical space with dealiased inputs and the
        result is transformed back and truncated, following the standard
        pseudo-spectral 2/3-rule treatment.  The combined derivative×mask
        multipliers dealias and differentiate in a single pass (the inputs
        are not truncated separately, which previously cost two redundant
        full-array multiplies).
        """
        psi_x = self.to_physical(self.ikx_dealias * psi_spec)
        psi_y = self.to_physical(self.ily_dealias * psi_spec)
        th_x = self.to_physical(self.ikx_dealias * theta_spec)
        th_y = self.to_physical(self.ily_dealias * theta_spec)
        jac = psi_x * th_y - psi_y * th_x
        return self.truncate(self.to_spectral(jac))

    def hyperdiffusion_filter(
        self, dt: float, efolding_time: float, order: int = 8
    ) -> np.ndarray:
        """Implicit hyperdiffusion multiplier applied once per time step.

        Damps the largest resolved wavenumber with e-folding time
        ``efolding_time`` and scales as ``(K²/K²_max)^(order/2)`` — this is
        the implicit hyperdiffusion treatment referenced in §II-B.  The
        multiplier is cached per ``(dt, efolding_time, order)``.
        """
        if efolding_time <= 0:
            raise ValueError("efolding_time must be positive")
        if order <= 0 or order % 2:
            raise ValueError("hyperdiffusion order must be a positive even integer")
        key = (float(dt), float(efolding_time), int(order))
        cached = self._hyperdiff_cache.get(key)
        if cached is None:
            ratio = self.ksq / self.ksq_max
            cached = np.exp(-(dt / efolding_time) * ratio ** (order // 2))
            self._hyperdiff_cache[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    # validation helpers
    # ------------------------------------------------------------------ #
    def _check_physical(self, field: np.ndarray) -> None:
        if field.shape[-2:] != (self.ny, self.nx):
            raise ValueError(
                f"physical field trailing shape {field.shape[-2:]} != {(self.ny, self.nx)}"
            )

    def _check_spectral(self, spec: np.ndarray) -> None:
        if spec.shape[-2:] != self.spectral_shape:
            raise ValueError(
                f"spectral field trailing shape {spec.shape[-2:]} != {self.spectral_shape}"
            )
