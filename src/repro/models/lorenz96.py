"""Lorenz-96 model.

The EnSF method was originally demonstrated on a high-dimensional Lorenz-96
system with up to O(10⁶) variables (paper §I, refs. [24], [25]).  We include
the model both as a fast, well-understood testbed for unit and property tests
of the filters, and to reproduce the "EnSF scales to very high dimension"
behaviour without the cost of a large SQG grid.
"""

from __future__ import annotations

import numpy as np

from repro.utils.random import default_rng

__all__ = ["Lorenz96"]


class Lorenz96:
    """The standard Lorenz-96 model ``dx_i/dt = (x_{i+1} − x_{i−2}) x_{i−1} − x_i + F``.

    Parameters
    ----------
    dim:
        Number of state variables (≥ 4).
    forcing:
        Forcing constant ``F`` (8.0 gives chaotic dynamics).
    dt:
        RK4 time step.
    """

    def __init__(self, dim: int = 40, forcing: float = 8.0, dt: float = 0.05):
        if dim < 4:
            raise ValueError("Lorenz-96 requires at least 4 variables")
        if dt <= 0:
            raise ValueError("time step must be positive")
        self.dim = int(dim)
        self.forcing = float(forcing)
        self.dt = float(dt)
        self.state_size = self.dim

    def tendency(self, x: np.ndarray) -> np.ndarray:
        """Right-hand side, vectorised over leading (ensemble) axes."""
        x = np.asarray(x, dtype=float)
        xp1 = np.roll(x, -1, axis=-1)
        xm2 = np.roll(x, 2, axis=-1)
        xm1 = np.roll(x, 1, axis=-1)
        return (xp1 - xm2) * xm1 - x + self.forcing

    def step(self, x: np.ndarray, n_steps: int = 1) -> np.ndarray:
        """Advance states by ``n_steps`` RK4 steps."""
        x = np.asarray(x, dtype=float)
        for _ in range(n_steps):
            k1 = self.tendency(x)
            k2 = self.tendency(x + 0.5 * self.dt * k1)
            k3 = self.tendency(x + 0.5 * self.dt * k2)
            k4 = self.tendency(x + self.dt * k3)
            x = x + (self.dt / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        return x

    def forecast(self, state: np.ndarray, n_steps: int = 1) -> np.ndarray:
        """ForecastModel protocol entry point (identical to :meth:`step`)."""
        return self.step(state, n_steps=n_steps)

    def equilibrium_state(self, perturb: float = 0.0, rng=None) -> np.ndarray:
        """The unstable fixed point ``x_i = F`` with optional random perturbation."""
        rng = default_rng(rng)
        x = np.full(self.dim, self.forcing)
        if perturb:
            x = x + perturb * rng.standard_normal(self.dim)
        return x

    def spinup(self, n_steps: int = 1000, rng=None) -> np.ndarray:
        """Return a state on the attractor after ``n_steps`` from a perturbed equilibrium."""
        x0 = self.equilibrium_state(perturb=0.01, rng=rng)
        return self.step(x0, n_steps=n_steps)
