"""Stochastic model-error processes for the imperfect-model OSSE scenario.

The paper's accuracy experiments add "random model errors drawn from an
uncorrelated Gaussian distribution … comprised of four stochastic processes
characterized by a different probability of occurrence and amplitude — 20 %,
15 %, 10 % and 5 % chance of realization with amplitudes equal to 20 %, 30 %,
40 % and 50 % of the average SQG model values, respectively" (§IV-A(b)).
This module implements exactly that mixture and is used to perturb the truth
run between analysis times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.random import default_rng

__all__ = ["ModelErrorComponent", "StochasticModelErrorMixture"]


@dataclass(frozen=True)
class ModelErrorComponent:
    """One component of the model-error mixture.

    Attributes
    ----------
    probability:
        Chance that this component is realised at a given analysis cycle.
    amplitude_fraction:
        Standard deviation of the additive Gaussian error expressed as a
        fraction of the reference state magnitude.
    """

    probability: float
    amplitude_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must lie in [0, 1]: {self.probability}")
        if self.amplitude_fraction < 0.0:
            raise ValueError("amplitude_fraction must be non-negative")


class StochasticModelErrorMixture:
    """Additive white-in-time Gaussian model-error mixture (diagonal covariance).

    Parameters
    ----------
    components:
        Mixture components.  The default reproduces the paper's setting.
    reference_magnitude:
        "Average SQG model value" against which the fractional amplitudes are
        measured.  When ``None`` the RMS of the state passed to
        :meth:`perturb` is used, which adapts automatically to the model's
        climatological amplitude.
    """

    PAPER_COMPONENTS = (
        ModelErrorComponent(probability=0.20, amplitude_fraction=0.20),
        ModelErrorComponent(probability=0.15, amplitude_fraction=0.30),
        ModelErrorComponent(probability=0.10, amplitude_fraction=0.40),
        ModelErrorComponent(probability=0.05, amplitude_fraction=0.50),
    )

    def __init__(
        self,
        components: tuple[ModelErrorComponent, ...] | None = None,
        reference_magnitude: float | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.components = tuple(components) if components is not None else self.PAPER_COMPONENTS
        if not self.components:
            raise ValueError("at least one mixture component is required")
        self.reference_magnitude = reference_magnitude
        self.rng = default_rng(rng)

    def sample_error(self, shape: tuple[int, ...], reference: float) -> np.ndarray:
        """Draw one realisation of the additive error for a state of ``shape``.

        Each component independently "fires" with its probability; realised
        components contribute an uncorrelated Gaussian field whose standard
        deviation is ``amplitude_fraction * reference``.  Variances of fired
        components add, matching a sum of independent processes.
        """
        variance = 0.0
        for comp in self.components:
            if self.rng.random() < comp.probability:
                variance += (comp.amplitude_fraction * reference) ** 2
        if variance == 0.0:
            return np.zeros(shape)
        return np.sqrt(variance) * self.rng.standard_normal(shape)

    def expected_std(self, reference: float) -> float:
        """Time-mean standard deviation of the mixture (for diagnostics/tests)."""
        variance = sum(
            comp.probability * (comp.amplitude_fraction * reference) ** 2
            for comp in self.components
        )
        return float(np.sqrt(variance))

    def perturb(self, state: np.ndarray) -> np.ndarray:
        """Return ``state`` plus one model-error realisation."""
        state = np.asarray(state, dtype=float)
        reference = self.reference_magnitude
        if reference is None:
            reference = float(np.sqrt(np.mean(state**2)))
        return state + self.sample_error(state.shape, reference)
