"""Forecast-model protocol shared by physics models and the ViT surrogate.

Every DA algorithm in this library (EnSF, LETKF, EnKF) only requires the
forecast model to expose :meth:`ForecastModel.forecast` mapping a (batch of)
state vector(s) to the next analysis time (Eq. 1 of the paper).  Both the
spectral SQG model and the ViT surrogate satisfy this protocol, which is what
lets the framework swap physics-based and AI-based forecast models (Fig. 1).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.utils.xp import StateHandle

__all__ = ["ForecastModel", "propagate_ensemble"]


@runtime_checkable
class ForecastModel(Protocol):
    """Protocol for forecast models ``X_k = f(X_{k-1})``.

    Attributes
    ----------
    state_size:
        Length of the flattened state vector.
    """

    state_size: int

    def forecast(self, state: np.ndarray, n_steps: int = 1) -> np.ndarray:
        """Advance flattened state(s) ``state`` by ``n_steps`` model steps.

        ``state`` may have shape ``(state_size,)`` or ``(m, state_size)``;
        the returned array has the same shape.
        """
        ...


def propagate_ensemble(
    model: ForecastModel,
    ensemble: np.ndarray,
    n_steps: int = 1,
    executor=None,
) -> np.ndarray:
    """Propagate an ensemble of flattened states through ``model``.

    Parameters
    ----------
    model:
        Any :class:`ForecastModel`.
    ensemble:
        Array of shape ``(m, state_size)``, or a
        :class:`~repro.utils.xp.StateHandle` wrapping one.  A handle comes
        back as a handle: when the model exposes ``forecast_device`` and the
        run is in-process, the ensemble is advanced entirely on the handle's
        device (an already-resident state re-uploads nothing); otherwise the
        host mirror is advanced and re-wrapped.
    n_steps:
        Number of model steps between analysis times.
    executor:
        Optional :class:`repro.hpc.ensemble_parallel.EnsembleExecutor`; when
        provided the members are distributed over worker processes (the
        ensemble dimension is the paper's chosen parallelisation axis because
        it incurs minimal communication — and the pool seam is a host
        boundary: chunks pickle to the workers, whose own backends manage
        device residency).  When ``None`` the model's own batched
        vectorisation is used in-process.
    """
    if isinstance(ensemble, StateHandle):
        if ensemble.ndim != 2:
            raise ValueError("ensemble must have shape (m, state_size)")
        if ensemble.shape[1] != model.state_size:
            raise ValueError(
                f"ensemble state size {ensemble.shape[1]} != model state size {model.state_size}"
            )
        if executor is None and hasattr(model, "forecast_device"):
            return StateHandle.from_device(
                ensemble.xp, model.forecast_device(ensemble.device(), n_steps=n_steps)
            )
        if executor is None:
            advanced = model.forecast(ensemble.host(), n_steps=n_steps)
        else:
            advanced = executor.map_states(model, ensemble.host(), n_steps=n_steps)
        return StateHandle.from_host(ensemble.xp, advanced)
    ensemble = np.asarray(ensemble)
    if ensemble.ndim != 2:
        raise ValueError("ensemble must have shape (m, state_size)")
    if ensemble.shape[1] != model.state_size:
        raise ValueError(
            f"ensemble state size {ensemble.shape[1]} != model state size {model.state_size}"
        )
    if executor is None:
        return model.forecast(ensemble, n_steps=n_steps)
    return executor.map_states(model, ensemble, n_steps=n_steps)
