"""Two-boundary surface quasi-geostrophic (SQG) turbulence model.

This is the benchmark forecast model of the paper (§II-B): a nonlinear Eady
model on an f-plane with uniform stratification and shear, discretised
spectrally with the FFT, advanced with a 4th-order Runge–Kutta scheme, the
2/3 dealiasing rule for nonlinear products, and implicit hyperdiffusion.  The
formulation follows Tulloch & Smith (2009) and the open-source ``sqgturb``
code referenced by the paper.

State
-----
The prognostic variable is the scaled boundary potential temperature
``θ ≡ b/f`` (buoyancy divided by the Coriolis parameter) on the two
horizontal boundaries ``z = 0`` and ``z = H``; the state array has shape
``(2, ny, nx)``.

Inversion
---------
With zero interior PV, the streamfunction for total wavenumber ``K`` has the
vertical structure ``ψ̂(z) = A cosh(mz) + B sinh(mz)`` with ``m = N K / f``.
Matching ``θ = ψ_z`` at the two boundaries gives (``μ = m H``):

``ψ̂(0) = (H/μ) (θ̂₁ / sinh μ − θ̂₀ / tanh μ)``
``ψ̂(H) = (H/μ) (θ̂₁ / tanh μ − θ̂₀ / sinh μ)``

Dynamics
--------
``∂θ_b/∂t = −J(ψ_b, θ_b) − Ū_b ∂θ_b/∂x + Λ v_b − D(θ_b)``

with the symmetric Eady base state ``Ū = ∓U/2`` at the bottom/top boundary,
thermal-wind meridional gradient ``∂θ̄/∂y = −Λ = −U/H``, and ``D`` an
8th-order hyperdiffusion applied implicitly each step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.spectral import SpectralGrid
from repro.utils.fft import FFTBackend
from repro.utils.grid import Grid2D
from repro.utils.random import default_rng
from repro.utils.spectra import kinetic_energy_spectrum, spectral_slope
from repro.utils.xp import ArrayBackend
from repro.utils.xp import resolve_backend as resolve_array_backend

__all__ = ["SQGParameters", "SQGModel", "spinup_sqg"]


class _ForecastWorkspace:
    """Persistent buffers for the fused tendency/RK4 kernel.

    One workspace exists per leading (batch) shape; it is reused across RK4
    stages, time steps and OSSE cycles, so the fused path performs no
    per-stage allocations for its spectral intermediates.  (The FFT output
    arrays are still allocated by the backend — numpy/scipy expose no ``out=``
    for transforms.)
    """

    def __init__(self, lead: tuple[int, ...], ny: int, nkx: int, keep: int, xp: ArrayBackend):
        full = lead + (2, ny, nkx)
        pruned = lead + (2, ny, keep)
        level = lead + (ny, keep)
        self.thp = xp.empty(pruned, dtype=complex)  # contiguous retained-state copy
        self.thf = xp.empty(pruned, dtype=complex)  # buoyancy-scaled θ̂
        self.psi = xp.empty(pruned, dtype=complex)
        self.t1 = xp.empty(level, dtype=complex)
        self.t2 = xp.empty(level, dtype=complex)
        self.quad = xp.empty((4,) + pruned, dtype=complex)  # θ̂_x, θ̂_y, û, v̂
        self.k = [xp.empty(full, dtype=complex) for _ in range(4)]
        self.stage = xp.empty(full, dtype=complex)
        self.acc = xp.empty(full, dtype=complex)
        self.div = xp.empty(full, dtype=complex)


@dataclass(frozen=True)
class SQGParameters:
    """Physical and numerical parameters of the SQG model.

    Defaults follow the ``sqgturb`` reference configuration used by the
    paper: a 20,000 km doubly-periodic domain, 10 km depth, f = 1e-4 s⁻¹,
    N = 1e-2 s⁻¹ and a 30 m/s boundary-to-boundary shear.
    """

    nx: int = 64
    ny: int = 64
    lx: float = 2.0e7
    ly: float = 2.0e7
    depth: float = 1.0e4
    coriolis: float = 1.0e-4
    brunt_vaisala: float = 1.0e-2
    shear_velocity: float = 30.0
    gravity: float = 9.81
    reference_temperature: float = 300.0
    dt: float = 600.0
    hyperdiff_order: int = 8
    hyperdiff_efold: float = 3600.0 * 3
    relaxation_time: float = 2.0 * 86400.0
    ekman_drag: float = 0.0
    dealias: bool = True

    def __post_init__(self) -> None:
        if self.nx <= 0 or self.ny <= 0:
            raise ValueError("grid dimensions must be positive")
        if self.dt <= 0:
            raise ValueError("time step must be positive")
        if self.depth <= 0 or self.coriolis <= 0 or self.brunt_vaisala <= 0:
            raise ValueError("physical parameters must be positive")
        if self.gravity <= 0 or self.reference_temperature <= 0:
            raise ValueError("gravity and reference temperature must be positive")
        if self.relaxation_time <= 0:
            raise ValueError("relaxation_time must be positive")

    @property
    def buoyancy_factor(self) -> float:
        """Conversion from potential-temperature anomaly (K) to ``b/f`` (m/s).

        The prognostic state is carried as potential temperature in Kelvin;
        internally the inversion works with the scaled variable
        ``θ_scaled = b/f = (g / (θ₀ f)) θ_K``.
        """
        return self.gravity / (self.reference_temperature * self.coriolis)

    @property
    def grid(self) -> Grid2D:
        """Physical grid associated with these parameters (two levels)."""
        return Grid2D(nx=self.nx, ny=self.ny, lx=self.lx, ly=self.ly, nlev=2)

    @property
    def rossby_radius(self) -> float:
        """Rossby radius of deformation ``N H / f`` (metres).

        Used by the LETKF implementation to couple horizontal and vertical
        localization scales, as in the paper's SQG-LETKF configuration.
        """
        return self.brunt_vaisala * self.depth / self.coriolis


class SQGModel:
    """Spectral SQG forecast model, vectorised over ensembles.

    The model satisfies the :class:`repro.models.base.ForecastModel` protocol:
    flattened states of shape ``(state_size,)`` or ``(m, state_size)`` are
    accepted by :meth:`forecast`, which is how the DA layer drives it.
    Internally states are ``(..., 2, ny, nx)`` physical fields.

    :meth:`step_spectral` is the **fused kernel**: the four advection
    fields ``θ̂_x, θ̂_y, û, v̂`` are built with precomputed combined
    derivative×dealias multipliers on the retained spectral columns only
    and inverse-transformed in one batched pruned FFT per tendency call;
    products, relaxation and the RK4 combination run in-place on persistent
    workspace buffers.  (The original step implementation served as the
    bit-identity oracle through several releases of equivalence testing and
    has been retired; ``_tendency_fused`` documents the floating-point
    ordering contract it was certified against.)

    Parameters
    ----------
    params:
        Physical/numerical configuration.
    backend:
        FFT backend selection forwarded to :class:`SpectralGrid`.
    array_backend:
        Array backend (:mod:`repro.utils.xp`) for the fused kernel's
        workspace arithmetic; ``None`` uses the ``REPRO_ARRAY_BACKEND``
        default.  The numpy backend is bit-identical to the pre-shim
        kernel.  Device array backends pair with their device-native FFT
        backend automatically (see :mod:`repro.utils.fft`), and whole
        trajectories stay device-resident: :meth:`step`, :meth:`run` and
        :meth:`forecast` pay one upload and one download total, while
        :meth:`forecast_device` / :meth:`step_spectral_device` never touch
        the host at all.
    """

    def __init__(
        self,
        params: SQGParameters | None = None,
        *,
        backend: str | FFTBackend | None = None,
        array_backend: str | ArrayBackend | None = None,
    ):
        self.params = params or SQGParameters()
        self.xp = resolve_array_backend(array_backend)
        p = self.params
        self.grid = p.grid
        self.spectral = SpectralGrid(
            p.nx, p.ny, p.lx, p.ly, dealias=p.dealias, backend=backend,
            array_backend=self.xp,
        )
        self.state_size = self.grid.size

        # Vertical structure parameter μ = N K H / f for every wavenumber.
        kappa = self.spectral.kappa
        mu = p.brunt_vaisala * kappa * p.depth / p.coriolis
        # Avoid division-by-zero at the mean mode and overflow at large μ.
        mu_safe = np.clip(mu, 1.0e-12, 500.0)
        self._h_over_mu = p.depth / mu_safe
        self._inv_sinh = 1.0 / np.sinh(mu_safe)
        self._inv_tanh = 1.0 / np.tanh(mu_safe)
        # The K = 0 mode carries no streamfunction (it is a domain constant).
        zero_mode = kappa == 0.0
        self._h_over_mu = np.where(zero_mode, 0.0, self._h_over_mu)
        self._inv_sinh = np.where(zero_mode, 0.0, self._inv_sinh)
        self._inv_tanh = np.where(zero_mode, 0.0, self._inv_tanh)

        # Symmetric Eady base state: mean zonal wind ∓U/2 at bottom/top and a
        # thermal-wind meridional temperature gradient.  In Kelvin the mean
        # gradient magnitude is Λ θ₀ f / g with Λ = U/H the vertical shear.
        self._u_base = np.array([-0.5 * p.shear_velocity, 0.5 * p.shear_velocity])
        self._lambda = p.shear_velocity / p.depth
        self._factor = p.buoyancy_factor
        self._mean_grad = self._lambda / self._factor  # = |∂θ̄_K/∂y|

        self._hyperdiff = self.spectral.hyperdiffusion_filter(
            p.dt, p.hyperdiff_efold, p.hyperdiff_order
        )

        # --- fused-kernel constants (hoisted out of the tendency loop) ----- #
        # The cycle-invariant multipliers move to the array backend's device
        # once at construction (identity on the CPU backends).
        sp = self.spectral
        xp = self.xp
        keep = sp.kx_keep
        self._keep = keep
        # Combined derivative×dealias multipliers on the retained columns.
        self._ikx_m = xp.to_device(np.ascontiguousarray(sp.ikx_dealias[:, :keep]))
        self._ily_m = xp.to_device(np.ascontiguousarray(sp.ily_dealias[:, :keep]))
        self._mask_keep = xp.to_device(np.ascontiguousarray(sp.dealias_mask[:, :keep]))
        # Pruned inversion coefficients (bit-identical values, fewer columns).
        self._h_over_mu_k = xp.to_device(np.ascontiguousarray(self._h_over_mu[:, :keep]))
        self._inv_sinh_k = xp.to_device(np.ascontiguousarray(self._inv_sinh[:, :keep]))
        self._inv_tanh_k = xp.to_device(np.ascontiguousarray(self._inv_tanh[:, :keep]))
        self._hyperdiff_dev = xp.to_device(self._hyperdiff)
        # Base state broadcast against (..., 2, ny, nx) physical fields.
        self._u_base_col = xp.to_device(self._u_base.reshape((2, 1, 1)))
        self._workspaces: dict[tuple[int, ...], _ForecastWorkspace] = {}

    def __getstate__(self):
        # Workspaces are cheap to rebuild and can be large; drop them so
        # models ship compactly to EnsembleExecutor worker processes.
        state = self.__dict__.copy()
        state["_workspaces"] = {}
        return state

    def _workspace(self, lead: tuple[int, ...]) -> _ForecastWorkspace:
        ws = self._workspaces.get(lead)
        if ws is None:
            p = self.params
            ws = _ForecastWorkspace(lead, p.ny, p.nx // 2 + 1, self._keep, self.xp)
            self._workspaces[lead] = ws
        return ws

    # ------------------------------------------------------------------ #
    # state helpers
    # ------------------------------------------------------------------ #
    def flatten(self, theta: np.ndarray) -> np.ndarray:
        """Flatten ``(..., 2, ny, nx)`` physical states to ``(..., state_size)``."""
        return self.grid.flatten_state(theta)

    def unflatten(self, vec: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`flatten`."""
        return self.grid.unflatten_state(vec)

    def random_initial_condition(
        self,
        rng: np.random.Generator | int | None = None,
        amplitude: float = 2.0,
        peak_wavenumber: int = 4,
    ) -> np.ndarray:
        """Smooth random boundary-θ field used to seed spin-up integrations.

        The field has a red spectrum peaking near ``peak_wavenumber`` with the
        two boundaries anti-correlated (the most unstable Eady structure),
        which shortens the spin-up needed to reach developed turbulence.
        """
        rng = default_rng(rng)
        p = self.params
        noise = rng.standard_normal((2, p.ny, p.nx))
        spec = self.spectral.to_spectral(noise)
        kappa_nd = self.spectral.kappa * p.lx / (2.0 * np.pi)
        shaping = kappa_nd**2 / (1.0 + (kappa_nd / max(peak_wavenumber, 1)) ** 6)
        spec *= shaping
        theta = self.spectral.to_physical(spec)
        theta[1] = 0.5 * theta[1] - 0.5 * theta[0]
        theta -= theta.mean(axis=(-2, -1), keepdims=True)
        rms = np.sqrt((theta**2).mean())
        if rms > 0:
            theta *= amplitude / rms
        return theta

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def invert(self, theta_spec: np.ndarray) -> np.ndarray:
        """Invert boundary θ̂ (Kelvin) to boundary ψ̂ (both ``(..., 2, ky, kx)``)."""
        th0 = theta_spec[..., 0, :, :] * self._factor
        th1 = theta_spec[..., 1, :, :] * self._factor
        psi0 = self._h_over_mu * (th1 * self._inv_sinh - th0 * self._inv_tanh)
        psi1 = self._h_over_mu * (th1 * self._inv_tanh - th0 * self._inv_sinh)
        return np.stack([psi0, psi1], axis=-3)

    def velocities(self, theta: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Geostrophic perturbation velocities ``(u, v)`` at both boundaries."""
        theta_spec = self.spectral.to_spectral(np.asarray(theta, dtype=float))
        psi_spec = self.invert(theta_spec)
        u = -self.spectral.to_physical(self.spectral.ddy(psi_spec))
        v = self.spectral.to_physical(self.spectral.ddx(psi_spec))
        return u, v

    def total_kinetic_energy(self, theta: np.ndarray) -> float:
        """Domain-averaged eddy kinetic energy (both boundaries)."""
        u, v = self.velocities(theta)
        return float(0.5 * np.mean(u**2 + v**2))

    def kinetic_energy_spectrum(self, theta: np.ndarray, level: int = 0):
        """Isotropic KE spectrum of the requested boundary level."""
        u, v = self.velocities(theta)
        return kinetic_energy_spectrum(u[..., level, :, :], v[..., level, :, :])

    def spectrum_slope(self, theta: np.ndarray, level: int = 0) -> float:
        """Inertial-range KE spectral slope (≈ −5/3 for developed SQG turbulence)."""
        k, spec = self.kinetic_energy_spectrum(theta, level=level)
        return spectral_slope(k, spec, k_min=4.0, k_max=self.params.nx // 3)

    def cfl_number(self, theta: np.ndarray) -> float:
        """Advective CFL number of the current state (should stay below ~1)."""
        u, v = self.velocities(theta)
        umax = np.abs(u + self._u_base[:, None, None]).max()
        vmax = np.abs(v).max()
        return float(
            self.params.dt * (umax / self.grid.dx + vmax / self.grid.dy)
        )

    # ------------------------------------------------------------------ #
    # dynamics — fused path
    # ------------------------------------------------------------------ #
    def _tendency_fused(
        self, theta_spec: np.ndarray, out: np.ndarray, ws: _ForecastWorkspace
    ) -> np.ndarray:
        """Fused spectral tendency (advection + baroclinic source + relaxation).

        Every floating-point operation of the retired reference implementation
        is replicated in the same order (the bit-identity contract the kernel
        was certified against); the savings come from (a) the combined
        derivative×dealias
        multipliers (the mask entries are exactly 0/1, so ``(i·k·mask)·θ̂``
        matches ``i·k·(mask·θ̂)`` bit for bit), (b) transforming only the
        retained spectral columns (the rest are exact zeros), (c) one batched
        inverse transform for all four advection fields instead of four, and
        (d) in-place arithmetic on workspace buffers.
        """
        sp = self.spectral
        p = self.params
        xp = self.xp
        keep = self._keep

        # Contiguous copy of the retained columns (strided views slow every
        # subsequent elementwise pass).
        xp.copyto(ws.thp, theta_spec[..., :keep])
        thp = ws.thp

        # --- inversion θ̂ → ψ̂ on the retained columns ---------------------- #
        th0 = xp.multiply(thp[..., 0, :, :], self._factor, out=ws.thf[..., 0, :, :])
        th1 = xp.multiply(thp[..., 1, :, :], self._factor, out=ws.thf[..., 1, :, :])
        xp.multiply(th1, self._inv_sinh_k, out=ws.t1)
        xp.multiply(th0, self._inv_tanh_k, out=ws.t2)
        xp.subtract(ws.t1, ws.t2, out=ws.t1)
        xp.multiply(self._h_over_mu_k, ws.t1, out=ws.psi[..., 0, :, :])
        xp.multiply(th1, self._inv_tanh_k, out=ws.t1)
        xp.multiply(th0, self._inv_sinh_k, out=ws.t2)
        xp.subtract(ws.t1, ws.t2, out=ws.t1)
        xp.multiply(self._h_over_mu_k, ws.t1, out=ws.psi[..., 1, :, :])

        # --- θ̂_x, θ̂_y, û, v̂ stacked for one batched inverse transform ----- #
        xp.multiply(self._ikx_m, thp, out=ws.quad[0])
        xp.multiply(self._ily_m, thp, out=ws.quad[1])
        xp.multiply(self._ily_m, ws.psi, out=ws.quad[2])
        xp.negative(ws.quad[2], out=ws.quad[2])  # û = −(i·l·mask)·ψ̂
        xp.multiply(self._ikx_m, ws.psi, out=ws.quad[3])
        theta_x, theta_y, u, v = sp.to_physical_retained(ws.quad)

        # --- physical-space products (reference operation order) ----------- #
        xp.add(u, self._u_base_col, out=u)
        xp.multiply(u, theta_x, out=u)
        xp.multiply(v, theta_y, out=theta_y)
        xp.add(u, theta_y, out=u)                 # advection
        xp.multiply(v, -self._mean_grad, out=v)   # baroclinic
        xp.add(u, v, out=u)
        xp.negative(u, out=u)                     # tend_phys

        # --- back to (retained) spectral space, dealias, relax -------------- #
        conv = sp.to_spectral_retained(u)
        xp.multiply(conv, self._mask_keep, out=conv)
        xp.divide(theta_spec, p.relaxation_time, out=ws.div)
        xp.subtract(conv, ws.div[..., :keep], out=out[..., :keep])
        xp.negative(ws.div[..., keep:], out=out[..., keep:])

        if p.ekman_drag > 0.0:
            drag0 = xp.multiply(
                theta_spec[..., 0, :, :], -p.ekman_drag, out=ws.div[..., 0, :, :]
            )
            xp.add(out[..., 0, :, :], drag0, out=out[..., 0, :, :])
            # The reference adds an all-zero drag level; replicate the +0.0
            # pass so even signed zeros match.
            xp.add(out[..., 1, :, :], 0.0, out=out[..., 1, :, :])
        return out

    def step_spectral(self, theta_spec: np.ndarray) -> np.ndarray:
        """Advance spectral θ̂ by one RK4 step plus implicit hyperdiffusion.

        Host-in/host-out public contract: exactly one upload and one
        download per call.  Trajectory loops (:meth:`step`,
        :meth:`forecast_device`, :meth:`run`) call
        :meth:`step_spectral_device` instead and keep the state resident
        across all steps.
        """
        xp = self.xp
        return xp.to_host(self.step_spectral_device(xp.to_device(np.asarray(theta_spec))))

    def step_spectral_device(self, theta_spec) -> np.ndarray:
        """RK4 + hyperdiffusion on a **device-resident** spectral state.

        ``theta_spec`` must already live on the model's array backend; the
        returned state stays there.  No host↔device transfers happen here —
        the RK4 stages, the fused tendency and the persistent workspaces all
        operate on device buffers (the mock-device transfer counters assert
        this).  Bit-identical to the pre-refactor in-step path: the transfer
        hooks were identities on the CPU backends.
        """
        xp = self.xp
        ws = self._workspace(theta_spec.shape[:-3])
        dt = self.params.dt
        k1, k2, k3, k4 = ws.k
        self._tendency_fused(theta_spec, k1, ws)
        xp.multiply(k1, 0.5 * dt, out=ws.stage)
        xp.add(theta_spec, ws.stage, out=ws.stage)
        self._tendency_fused(ws.stage, k2, ws)
        xp.multiply(k2, 0.5 * dt, out=ws.stage)
        xp.add(theta_spec, ws.stage, out=ws.stage)
        self._tendency_fused(ws.stage, k3, ws)
        xp.multiply(k3, dt, out=ws.stage)
        xp.add(theta_spec, ws.stage, out=ws.stage)
        self._tendency_fused(ws.stage, k4, ws)
        # new = (θ̂ + dt/6 · (k1 + 2·k2 + 2·k3 + k4)) · hyperdiff, in the
        # reference association order.
        xp.multiply(k2, 2.0, out=ws.acc)
        xp.add(k1, ws.acc, out=ws.acc)
        xp.multiply(k3, 2.0, out=ws.stage)
        xp.add(ws.acc, ws.stage, out=ws.acc)
        xp.add(ws.acc, k4, out=ws.acc)
        xp.multiply(ws.acc, dt / 6.0, out=ws.acc)
        new = xp.add(theta_spec, ws.acc)
        xp.multiply(new, self._hyperdiff_dev, out=new)
        return new

    def step(self, theta: np.ndarray, n_steps: int = 1) -> np.ndarray:
        """Advance physical states ``(..., 2, ny, nx)`` by ``n_steps`` steps.

        The whole trajectory is device-resident: one upload before the first
        step, one download after the last, regardless of ``n_steps``.
        """
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        theta = np.asarray(theta, dtype=float)
        xp = self.xp
        spec = self.spectral.to_spectral(xp.to_device(theta))
        for _ in range(n_steps):
            spec = self.step_spectral_device(spec)
        return xp.to_host(self.spectral.to_physical(spec))

    def forecast(self, state: np.ndarray, n_steps: int = 1) -> np.ndarray:
        """ForecastModel protocol entry point on flattened states."""
        state = np.asarray(state, dtype=float)
        squeeze = state.ndim == 1
        if squeeze:
            state = state[None, :]
        theta = self.unflatten(state)
        theta = self.step(theta, n_steps=n_steps)
        out = self.flatten(theta)
        return out[0] if squeeze else out

    def forecast_device(self, state, n_steps: int = 1):
        """Device-resident forecast on flattened states.

        The counterpart of :meth:`forecast` for callers that already hold
        the ensemble on the model's array backend (the cycle engine's
        :class:`~repro.utils.xp.StateHandle` path): flattened device states
        in, flattened device states out, **zero** host↔device transfers —
        the caller owns the boundary.  Identical arithmetic to
        :meth:`forecast`.
        """
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        squeeze = state.ndim == 1
        if squeeze:
            state = state[None, :]
        spec = self.spectral.to_spectral(self.unflatten(state))
        for _ in range(n_steps):
            spec = self.step_spectral_device(spec)
        out = self.flatten(self.spectral.to_physical(spec))
        return out[0] if squeeze else out

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    def run(
        self,
        theta0: np.ndarray,
        n_steps: int,
        save_every: int | None = None,
    ) -> np.ndarray:
        """Integrate and optionally return a trajectory.

        Returns the final state when ``save_every`` is ``None``; otherwise an
        array of snapshots of shape ``(n_saved, 2, ny, nx)`` including the
        initial state.
        """
        theta = np.asarray(theta0, dtype=float)
        if save_every is None:
            return self.step(theta, n_steps=n_steps)
        xp = self.xp
        snapshots = [theta.copy()]
        # One upload for the whole trajectory; each saved snapshot is one
        # download (a diagnostic — the integration state never leaves the
        # device).
        spec = self.spectral.to_spectral(xp.to_device(theta))
        for istep in range(1, n_steps + 1):
            spec = self.step_spectral_device(spec)
            if istep % save_every == 0:
                snapshots.append(xp.to_host(self.spectral.to_physical(spec)))
        return np.array(snapshots)


def spinup_sqg(
    model: SQGModel,
    n_steps: int = 2000,
    rng: np.random.Generator | int | None = None,
    amplitude: float = 2.0,
) -> np.ndarray:
    """Spin the model up from a random seed field to developed turbulence.

    Returns the final ``(2, ny, nx)`` state.  Used to build the truth run and
    the climatological catalogue from which initial ensembles are drawn.
    """
    theta0 = model.random_initial_condition(rng=rng, amplitude=amplitude)
    return model.step(theta0, n_steps=n_steps)
